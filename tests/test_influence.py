"""Influence estimation tests: gradients, TracInCP, TracSeq, selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InfluenceError
from repro.influence import (
    GradientProjector,
    TracInCP,
    TracSeq,
    bottom_k_indices,
    flatten_grads,
    gradient_matrix,
    normalize_scores,
    per_sample_gradient,
    select_top_k,
    split_high_low,
    top_k_indices,
    trainable_parameters,
)
from repro.nn import MistralTiny
from repro.optim import AdamW
from repro.training import CheckpointManager, Trainer, TrainingConfig


def make_example(ids):
    return (list(ids), list(ids))


@pytest.fixture
def checkpoints(tiny_model, tmp_path):
    """Train briefly, saving checkpoints for influence replay."""
    rng = np.random.default_rng(0)
    examples = [make_example(rng.integers(5, 60, size=8)) for _ in range(12)]
    manager = CheckpointManager(tmp_path)
    trainer = Trainer(
        tiny_model,
        AdamW(tiny_model.parameters(), lr=3e-3),
        config=TrainingConfig(epochs=2, batch_size=4, checkpoint_every=2),
        checkpoint_manager=manager,
    )
    trainer.train(examples)
    return manager.checkpoints()


class TestGradients:
    def test_per_sample_gradient_shape(self, tiny_model):
        dim = sum(p.size for p in trainable_parameters(tiny_model))
        grad = per_sample_gradient(tiny_model, make_example([1, 2, 3, 4]))
        assert grad.shape == (dim,)
        assert np.isfinite(grad).all()

    def test_per_sample_grads_sum_to_batch_grad(self, tiny_model):
        """Mean of per-sample grads equals the batch gradient (same lengths)."""
        examples = [make_example([3, 7, 9, 11]), make_example([5, 6, 8, 10])]
        per = np.stack([per_sample_gradient(tiny_model, e) for e in examples]).mean(axis=0)

        tiny_model.zero_grad()
        ids = np.array([e[0] for e in examples])
        tiny_model.loss(ids, ids).backward()
        batch = flatten_grads(trainable_parameters(tiny_model))
        tiny_model.zero_grad()
        np.testing.assert_allclose(per, batch, atol=1e-5)

    def test_gradient_matrix_stacks(self, tiny_model):
        examples = [make_example([1, 2, 3]), make_example([4, 5, 6])]
        matrix = gradient_matrix(tiny_model, examples)
        assert matrix.shape[0] == 2

    def test_gradient_matrix_empty_raises(self, tiny_model):
        with pytest.raises(InfluenceError):
            gradient_matrix(tiny_model, [])

    def test_projector_preserves_dot_products_approximately(self):
        rng = np.random.default_rng(0)
        dim, k = 2000, 512
        projector = GradientProjector(dim, k=k, seed=0)
        a = rng.normal(size=dim)
        b = rng.normal(size=dim)
        exact = a @ b
        approx = projector.project(a) @ projector.project(b)
        assert abs(approx - exact) < 0.35 * dim  # JL tolerance at this k

    def test_projector_deterministic(self):
        a = GradientProjector(100, k=10, seed=3)
        b = GradientProjector(100, k=10, seed=3)
        v = np.ones(100)
        np.testing.assert_allclose(a.project(v), b.project(v))

    def test_projector_dim_mismatch(self):
        projector = GradientProjector(10, k=4)
        with pytest.raises(InfluenceError):
            projector.project(np.ones(11))

    def test_projector_k_capped_at_dim_warns(self):
        with pytest.warns(RuntimeWarning, match="clamping"):
            projector = GradientProjector(5, k=100)
        assert projector.k == 5
        assert projector.requested_k == 100

    def test_no_trainable_params_raises(self, tiny_model):
        for p in tiny_model.parameters():
            p.requires_grad = False
        with pytest.raises(InfluenceError):
            trainable_parameters(tiny_model)


class TestTracInCP:
    def test_self_similarity_dominates(self, tiny_model, checkpoints):
        """A test example identical to a train example gets max influence."""
        rng = np.random.default_rng(1)
        train = [make_example(rng.integers(5, 60, size=8)) for _ in range(6)]
        test = [train[2]]
        tracer = TracInCP(tiny_model, checkpoints)
        scores = tracer.scores(train, test)
        assert scores.argmax() == 2

    def test_restores_model_state(self, tiny_model, checkpoints):
        before = tiny_model.state_dict()
        tracer = TracInCP(tiny_model, checkpoints)
        tracer.scores([make_example([1, 2, 3])], [make_example([4, 5, 6])])
        after = tiny_model.state_dict()
        for key in before:
            np.testing.assert_allclose(before[key], after[key])

    def test_influence_matrix_shape(self, tiny_model, checkpoints):
        train = [make_example([1, 2, 3]), make_example([4, 5, 6])]
        test = [make_example([7, 8, 9])]
        matrix = TracInCP(tiny_model, checkpoints).influence_matrix(train, test)
        assert matrix.shape == (2, 1)

    def test_self_influence_positive(self, tiny_model, checkpoints):
        train = [make_example([1, 2, 3]), make_example([4, 5, 6])]
        self_inf = TracInCP(tiny_model, checkpoints).self_influence(train)
        assert (self_inf > 0).all()

    def test_empty_sets_raise(self, tiny_model, checkpoints):
        tracer = TracInCP(tiny_model, checkpoints)
        with pytest.raises(InfluenceError):
            tracer.influence_matrix([], [make_example([1, 2])])
        with pytest.raises(InfluenceError):
            tracer.influence_matrix([make_example([1, 2])], [])

    def test_no_checkpoints_raises(self, tiny_model):
        with pytest.raises(InfluenceError):
            TracInCP(tiny_model, [])

    def test_projected_ranking_close_to_exact(self, tiny_model, checkpoints):
        rng = np.random.default_rng(2)
        train = [make_example(rng.integers(5, 60, size=8)) for _ in range(8)]
        test = [make_example(rng.integers(5, 60, size=8)) for _ in range(2)]
        exact = TracInCP(tiny_model, checkpoints).scores(train, test)
        dim = sum(p.size for p in trainable_parameters(tiny_model))
        projector = GradientProjector(dim, k=4096, seed=0)
        approx = TracInCP(tiny_model, checkpoints, projector=projector).scores(train, test)
        corr = np.corrcoef(exact, approx)[0, 1]
        assert corr > 0.7


class TestTracSeq:
    def test_gamma_one_equals_tracin(self, tiny_model, checkpoints):
        rng = np.random.default_rng(3)
        train = [make_example(rng.integers(5, 60, size=8)) for _ in range(5)]
        test = [make_example(rng.integers(5, 60, size=8))]
        plain = TracInCP(tiny_model, checkpoints).scores(train, test)
        seq = TracSeq(tiny_model, checkpoints, gamma=1.0).scores(train, test)
        np.testing.assert_allclose(plain, seq, rtol=1e-6)

    def test_gamma_downweights_early_checkpoints(self, tiny_model, checkpoints):
        tracer = TracSeq(tiny_model, checkpoints, gamma=0.5)
        weights = [
            tracer._checkpoint_weight(i, record) / record.lr
            for i, record in enumerate(tracer.checkpoints)
        ]
        assert all(a < b for a, b in zip(weights, weights[1:]))
        assert weights[-1] == pytest.approx(1.0)

    def test_invalid_gamma(self, tiny_model, checkpoints):
        for gamma in (0.0, -0.5, 1.5):
            with pytest.raises(InfluenceError):
                TracSeq(tiny_model, checkpoints, gamma=gamma)

    def test_sample_time_decay_downweights_old(self, tiny_model, checkpoints):
        rng = np.random.default_rng(4)
        train = [make_example(rng.integers(5, 60, size=8)) for _ in range(4)]
        test = [make_example(rng.integers(5, 60, size=8))]
        tracer = TracSeq(tiny_model, checkpoints, gamma=0.5)
        base = tracer.scores(train, test)
        decayed = tracer.scores(train, test, sample_times=[0, 1, 2, 3], test_time=3)
        expected = base * 0.5 ** np.array([3, 2, 1, 0])
        np.testing.assert_allclose(decayed, expected, rtol=1e-6)

    def test_sample_times_length_mismatch(self, tiny_model, checkpoints):
        tracer = TracSeq(tiny_model, checkpoints)
        with pytest.raises(InfluenceError):
            tracer.scores([make_example([1, 2])], [make_example([3, 4])], sample_times=[0, 1])

    def test_future_sample_times_rejected(self, tiny_model, checkpoints):
        tracer = TracSeq(tiny_model, checkpoints)
        with pytest.raises(InfluenceError):
            tracer.scores(
                [make_example([1, 2])], [make_example([3, 4])], sample_times=[5], test_time=3
            )

    def test_custom_checkpoint_times(self, tiny_model, checkpoints):
        times = [10.0 * i for i in range(len(checkpoints))]
        tracer = TracSeq(tiny_model, checkpoints, gamma=0.9, checkpoint_times=times)
        assert tracer.horizon == times[-1]

    def test_checkpoint_times_length_mismatch(self, tiny_model, checkpoints):
        with pytest.raises(InfluenceError):
            TracSeq(tiny_model, checkpoints, checkpoint_times=[1.0])


class TestSelection:
    def test_top_k_order(self):
        scores = np.array([0.1, 0.9, 0.5, 0.7])
        np.testing.assert_array_equal(top_k_indices(scores, 2), [1, 3])

    def test_bottom_k_order(self):
        scores = np.array([0.1, 0.9, 0.5, 0.7])
        np.testing.assert_array_equal(bottom_k_indices(scores, 2), [0, 2])

    def test_select_top_k_items(self):
        items = ["a", "b", "c"]
        assert select_top_k(items, np.array([1.0, 3.0, 2.0]), 2) == ["b", "c"]

    def test_k_out_of_range(self):
        with pytest.raises(InfluenceError):
            top_k_indices(np.array([1.0]), 2)
        with pytest.raises(InfluenceError):
            top_k_indices(np.array([1.0]), 0)

    def test_item_score_mismatch(self):
        with pytest.raises(InfluenceError):
            select_top_k(["a"], np.array([1.0, 2.0]), 1)

    def test_split_high_low_disjoint_at_half(self):
        scores = np.arange(10, dtype=np.float64)
        high, low = split_high_low(scores, 0.5)
        assert len(high) == len(low) == 5
        assert set(high).isdisjoint(set(low))
        assert scores[high].min() > scores[low].max()

    def test_split_fraction_validation(self):
        with pytest.raises(InfluenceError):
            split_high_low(np.arange(4), 0.0)
        with pytest.raises(InfluenceError):
            split_high_low(np.arange(4), 1.5)

    def test_split_fraction_above_half_rejected(self):
        """fraction > 0.5 would put samples in both groups (Figure 2 bug)."""
        with pytest.raises(InfluenceError, match="disjoint"):
            split_high_low(np.arange(10, dtype=np.float64), 0.51)

    def test_split_boundary_half_is_disjoint_odd_n(self):
        high, low = split_high_low(np.arange(9, dtype=np.float64), 0.5)
        assert set(high).isdisjoint(set(low))
        assert len(high) == len(low) == 4

    def test_normalize_scores_range(self):
        out = normalize_scores(np.array([2.0, 4.0, 6.0]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0])

    def test_normalize_constant_array(self):
        np.testing.assert_allclose(normalize_scores(np.full(3, 7.0)), [0.5, 0.5, 0.5])

    def test_stable_tie_break(self):
        scores = np.array([1.0, 1.0, 1.0])
        np.testing.assert_array_equal(top_k_indices(scores, 2), [0, 1])


class TestStratifiedTopK:
    def test_preserves_class_balance(self):
        from repro.influence import stratified_top_k

        rng = np.random.default_rng(0)
        labels = np.array([0] * 80 + [1] * 20)
        scores = rng.random(100)
        idx = stratified_top_k(scores, labels, 50)
        assert len(idx) == 50
        assert labels[idx].sum() == 10  # 20% positives preserved

    def test_picks_best_within_class(self):
        from repro.influence import stratified_top_k

        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.1, 0.2, 0.8])
        idx = stratified_top_k(scores, labels, 2)
        assert set(idx) == {0, 3}

    def test_result_sorted_by_score(self):
        from repro.influence import stratified_top_k

        labels = np.array([0, 1, 0, 1, 0, 1])
        scores = np.array([0.3, 0.9, 0.5, 0.1, 0.7, 0.6])
        idx = stratified_top_k(scores, labels, 4)
        picked = scores[idx]
        assert all(a >= b for a, b in zip(picked, picked[1:]))

    def test_k_equals_n_returns_everything(self):
        from repro.influence import stratified_top_k

        labels = np.array([0, 1, 1])
        idx = stratified_top_k(np.array([0.1, 0.2, 0.3]), labels, 3)
        assert set(idx) == {0, 1, 2}

    def test_tiny_minority_class_never_starves_k(self):
        from repro.influence import stratified_top_k

        labels = np.array([0] * 99 + [1])
        idx = stratified_top_k(np.arange(100, dtype=float), labels, 10)
        assert len(idx) == 10

    def test_validation(self):
        from repro.influence import stratified_top_k

        with pytest.raises(InfluenceError):
            stratified_top_k(np.ones(3), np.zeros(2), 1)
        with pytest.raises(InfluenceError):
            stratified_top_k(np.ones(3), np.zeros(3), 0)
        with pytest.raises(InfluenceError):
            stratified_top_k(np.ones(3), np.zeros(3), 4)
