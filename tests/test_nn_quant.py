"""Int8 quantization: layer parity, the compile pass, and the fused kernel."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import ragged_prompts
from repro.errors import QuantizationError
from repro.nn import (
    Embedding,
    Linear,
    MistralTiny,
    ModelConfig,
    QuantizedEmbedding,
    QuantizedLinear,
    is_quantized,
    quantize_model,
    quantize_weight,
    weight_bytes,
)
from repro.nn.cache import PrefixCache
from repro.nn.generation import GenerationConfig, generate, generate_batch
from repro.nn.module import Module
from repro.tensor import Tensor, no_grad


class TestQuantizeWeight:
    def test_roundtrip_error_bounded_by_half_scale(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(8, 16)).astype(np.float32)
        w_q, scale = quantize_weight(w)
        assert w_q.dtype == np.int8
        assert scale.dtype == np.float32
        err = np.abs(w_q.astype(np.float32) * scale[:, None] - w)
        assert np.all(err <= scale[:, None] / 2 + 1e-7)

    def test_zero_rows_get_unit_scale(self):
        w = np.zeros((3, 4), dtype=np.float32)
        w[1] = 1.0
        w_q, scale = quantize_weight(w)
        assert scale[0] == 1.0 and scale[2] == 1.0
        assert np.all(w_q[0] == 0)

    def test_extremes_map_to_qmax(self):
        w = np.array([[-2.0, 2.0]], dtype=np.float32)
        w_q, scale = quantize_weight(w)
        assert set(w_q[0].tolist()) == {-127, 127}

    def test_non_2d_raises(self):
        with pytest.raises(QuantizationError):
            quantize_weight(np.zeros(4, dtype=np.float32))


class TestQuantizedLinear:
    @settings(max_examples=40, deadline=None)
    @given(
        in_features=st.integers(1, 24),
        out_features=st.integers(1, 24),
        lead=st.lists(st.integers(1, 4), min_size=0, max_size=3),
        seed=st.integers(0, 2**16),
    )
    def test_parity_with_float_linear(self, in_features, out_features, lead, seed):
        """Quantized output stays within the analytic rounding bound of float."""
        rng = np.random.default_rng(seed)
        linear = Linear(in_features, out_features, bias=bool(seed % 2), rng=rng)
        q = QuantizedLinear.from_linear(linear)
        x = rng.normal(size=(*lead, in_features)).astype(np.float32)
        with no_grad():
            expected = linear(Tensor(x)).data
            got = q(Tensor(x)).data
        assert got.shape == expected.shape
        # Per-element weight error is <= scale/2, so the output error is
        # bounded by (scale/2) * sum|x| plus accumulation noise.
        bound = 0.5 * q.scale.data.max() * np.abs(x).sum(axis=-1).max() + 1e-4
        assert np.max(np.abs(got - expected)) <= bound

    def test_matches_dequantized_reference(self):
        rng = np.random.default_rng(1)
        linear = Linear(12, 7, rng=rng)
        q = QuantizedLinear.from_linear(linear)
        x = rng.normal(size=(3, 5, 12)).astype(np.float32)
        w_deq = q.weight_q.data.astype(np.float32) * q.scale.data[:, None]
        np.testing.assert_allclose(
            q.matmul_np(x), x @ w_deq.T, rtol=1e-5, atol=1e-5
        )

    def test_grad_guard(self):
        q = QuantizedLinear.from_linear(Linear(4, 4, rng=np.random.default_rng(0)))
        x = Tensor(np.ones((2, 4), dtype=np.float32), requires_grad=True)
        with pytest.raises(QuantizationError):
            q(x)
        with no_grad():
            assert q(x).shape == (2, 4)

    def test_state_dict_roundtrip_preserves_int8(self):
        rng = np.random.default_rng(2)
        q = QuantizedLinear.from_linear(Linear(6, 5, rng=rng))
        fresh = QuantizedLinear(6, 5, bias=True)
        fresh.load_state_dict(q.state_dict())
        assert fresh.weight_q.data.dtype == np.int8
        np.testing.assert_array_equal(fresh.weight_q.data, q.weight_q.data)
        np.testing.assert_array_equal(fresh.scale.data, q.scale.data)

    def test_embedding_lookup_and_project(self):
        rng = np.random.default_rng(3)
        emb = Embedding(10, 8, rng=rng)
        q = QuantizedEmbedding.from_embedding(emb)
        idx = np.array([[0, 3], [9, 1]])
        looked = q(idx).data
        assert looked.shape == (2, 2, 8)
        w_deq = q.weight_q.data.astype(np.float32) * q.scale.data[:, None]
        np.testing.assert_allclose(looked, w_deq[idx], rtol=1e-6, atol=1e-6)
        x = rng.normal(size=(2, 8)).astype(np.float32)
        with no_grad():
            np.testing.assert_allclose(
                q.project(Tensor(x)).data, x @ w_deq.T, rtol=1e-5, atol=1e-5
            )


class _HeadOnly(Module):
    def __init__(self):
        super().__init__()
        self.head = Linear(4, 2, rng=np.random.default_rng(0))


class TestQuantizeModel:
    def test_swaps_targets_and_embeddings(self, tiny_model):
        quantize_model(tiny_model)
        attn = tiny_model.blocks[0].attn
        assert isinstance(attn.wq, QuantizedLinear)
        assert isinstance(attn.wo, QuantizedLinear)
        assert isinstance(tiny_model.blocks[0].ffn.w2, QuantizedLinear)
        assert isinstance(tiny_model.tok_embed, QuantizedEmbedding)
        assert is_quantized(tiny_model)
        assert not tiny_model.training  # compile pass leaves eval mode

    def test_float_model_not_quantized(self, tiny_model):
        assert not is_quantized(tiny_model)
        assert tiny_model._inference_kernel is None

    def test_weight_memory_reduction(self, tiny_config):
        float_model = MistralTiny(tiny_config, rng=0)
        before = weight_bytes(float_model)
        quantize_model(float_model)
        after = weight_bytes(float_model)
        assert before / after >= 3.0

    def test_logits_close_to_float(self, tiny_config, token_batch):
        float_model = MistralTiny(tiny_config, rng=0)
        qmodel = quantize_model(MistralTiny(tiny_config, rng=0))
        float_model.eval()
        with no_grad():
            ref = float_model(token_batch).data
            got = qmodel(token_batch).data
        scale = np.abs(ref).mean()
        assert np.max(np.abs(got - ref)) <= 0.05 * max(scale, 1.0) + 0.05

    def test_bumps_weight_version_once(self, tiny_model):
        before = tiny_model.weight_version
        quantize_model(tiny_model)
        assert tiny_model.weight_version == before + 1

    def test_invalid_dtype_raises(self, tiny_model):
        with pytest.raises(QuantizationError):
            quantize_model(tiny_model, dtype="int4")

    def test_no_eligible_layers_raises(self, tiny_model):
        with pytest.raises(QuantizationError):
            quantize_model(tiny_model, targets={"nope"}, quantize_embeddings=False)

    def test_head_opt_in(self):
        model = _HeadOnly()
        with pytest.raises(QuantizationError):  # not targeted by default
            quantize_model(model, quantize_embeddings=False)
        quantize_model(model, quantize_head=True, quantize_embeddings=False)
        assert isinstance(model.head, QuantizedLinear)

    def test_refuses_unmerged_lora(self, tiny_config):
        from repro.lora import LoRAConfig, apply_lora, merge_lora

        model = MistralTiny(tiny_config, rng=0)
        apply_lora(model, LoRAConfig(rank=2), rng=0)
        with pytest.raises(QuantizationError):
            quantize_model(model)
        merge_lora(model)
        quantize_model(model)
        assert is_quantized(model)

    def test_merged_lora_quantizes_to_merged_weights(self, tiny_config, token_batch):
        """Post-merge quantization sees base+delta, not the pre-LoRA base."""
        from repro.lora import LoRAConfig, apply_lora, merge_lora

        base_model = MistralTiny(tiny_config, rng=0)
        base_model.eval()
        with no_grad():
            base_ref = base_model(token_batch).data

        model = MistralTiny(tiny_config, rng=0)
        adapters = apply_lora(model, LoRAConfig(rank=2, alpha=16.0), rng=1)
        for adapter in adapters:  # make the delta visible
            adapter.lora_b.data[:] = 0.1
        merge_lora(model)
        model.eval()
        with no_grad():
            merged_ref = model(token_batch).data
        quantize_model(model)
        with no_grad():
            got = model(token_batch).data
        err_merged = np.max(np.abs(got - merged_ref))
        err_base = np.max(np.abs(got - base_ref))
        assert err_merged < err_base  # tracks base+delta, not the pre-LoRA base
        # Loose absolute bound: the forced delta inflates per-row absmax
        # (and so the int8 scales); the tracking assert above is the point.
        assert err_merged <= 0.25 * np.abs(merged_ref).max() + 0.05

    def test_state_dict_roundtrip_bit_exact(self, tiny_config, token_batch):
        source = quantize_model(MistralTiny(tiny_config, rng=0))
        clone = quantize_model(MistralTiny(tiny_config, rng=7))
        clone.load_state_dict(source.state_dict())
        assert clone.blocks[0].attn.wq.weight_q.data.dtype == np.int8
        with no_grad():
            np.testing.assert_array_equal(
                clone(token_batch).data, source(token_batch).data
            )


class TestFusedKernelParity:
    """All generation entry points share the fused kernel bit-for-bit."""

    CONFIG = GenerationConfig(max_new_tokens=8, stop_tokens=())

    def test_generate_entry_points_bit_identical(self, tiny_config):
        from repro.nn import generate_continuous

        model = quantize_model(MistralTiny(tiny_config, rng=0))
        rows = ragged_prompts(tiny_config.vocab_size)
        single = [list(generate(model, r, self.CONFIG)) for r in rows]
        batched = [list(r) for r in generate_batch(model, rows, self.CONFIG)]
        continuous = [list(r) for r in generate_continuous(model, rows, self.CONFIG)]
        assert batched == single
        assert continuous == single

    def test_kernel_matches_tensor_path_on_quantized_weights(
        self, tiny_config, token_batch
    ):
        """The fused kernel vs the Tensor graph over the same int8 weights."""
        model = quantize_model(MistralTiny(tiny_config, rng=0))
        with no_grad():
            fused = model(token_batch).data
            model._inference_kernel = None  # force the Tensor path
            graph = model(token_batch).data
        np.testing.assert_allclose(fused, graph, rtol=1e-4, atol=1e-5)

    def test_training_mode_bypasses_kernel(self, tiny_config, token_batch):
        model = quantize_model(MistralTiny(tiny_config, rng=0))
        calls = []
        model._inference_kernel = lambda *a, **k: calls.append(1) or np.zeros(
            (*token_batch.shape, tiny_config.vocab_size), dtype=np.float32
        )
        with no_grad():
            model(token_batch)
        assert calls  # eval + no_grad dispatches to the kernel
        calls.clear()
        model.train()
        try:
            with no_grad():
                model(token_batch)
        finally:
            model.eval()
        assert not calls  # training mode never touches the kernel

    def test_quantize_flushes_prefix_cache(self, tiny_config):
        """No KV/logit entry computed under float weights survives the pass."""
        model = MistralTiny(tiny_config, rng=0)
        model.eval()
        cache = PrefixCache(capacity=16)
        rows = ragged_prompts(tiny_config.vocab_size)
        generate_batch(model, rows, self.CONFIG, prefix_cache=cache)
        assert cache.stats.misses > 0

        quantize_model(model)
        warm = [
            list(r)
            for r in generate_batch(model, rows, self.CONFIG, prefix_cache=cache)
        ]
        assert cache.stats.invalidations == 1
        cold = [list(r) for r in generate_batch(model, rows, self.CONFIG)]
        assert warm == cold  # stale float entries were flushed, not served


class TestGoldenDecisionParity:
    def test_quantized_behavior_decisions_match_float(self, fitted_zigong, german_examples):
        """100% decision parity on the seed eval set, scores and generations."""
        from repro.baselines.lm import LMClassifier
        from repro.lora import apply_lora, merge_lora

        zigong = fitted_zigong
        model = MistralTiny(zigong.config.model, rng=zigong.config.seed)
        if getattr(zigong, "_lora_applied", False):
            apply_lora(model, zigong.config.lora, rng=zigong.config.seed)
        model.load_state_dict(
            {k: v.copy() for k, v in zigong.model.state_dict().items()}
        )
        merge_lora(model)
        quantize_model(model)

        float_clf = LMClassifier(zigong.model, zigong.tokenizer, prefix_cache_size=0)
        quant_clf = LMClassifier(model, zigong.tokenizer, prefix_cache_size=0)
        prompts = [e.prompt for e in german_examples[:24]]

        float_scores = float_clf.score_batch(prompts, "good", "bad")
        quant_scores = quant_clf.score_batch(prompts, "good", "bad")
        assert [s >= 0.5 for s in float_scores] == [s >= 0.5 for s in quant_scores]
        assert float_clf.generate_answer_batch(prompts) == quant_clf.generate_answer_batch(prompts)
