"""Online-learning pipeline: state machine, gate contract, golden e2e run.

Chaos scenarios (kill mid-retrain, rollback, shadow-error storm) live in
``test_pipeline_chaos.py``; this file covers the sunny-day machinery.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.config import test_config as make_config
from repro.core import ZiGong
from repro.data import build_behavior_examples
from repro.datasets import make_behavior
from repro.errors import ConfigError, PipelineError
from repro.eval import EvalResult
from repro.obs import EventSink, MetricsRegistry, Observability, Tracer
from repro.pipeline import (
    MONITOR,
    PHASE_CODES,
    PROMOTE,
    RETRAIN,
    SHADOW,
    OnlineConfig,
    OnlinePipeline,
    PipelineState,
    PromotionGate,
    evaluate_gate,
)
from repro.serving import ClusterConfig, ScoreRequest, ShadowDeployment

SEED = 3


# ----------------------------------------------------------------------
# Shared scenario: a trained base model plus live behavior traffic
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def scenario():
    """Base model + examples + traffic for every pipeline test."""
    dataset = make_behavior(n_users=24, n_periods=4, seed=SEED)
    examples = build_behavior_examples(dataset)
    base = ZiGong.from_examples(examples, config=make_config(seed=0))
    base.apply_lora()
    base.finetune(examples[:48])
    traffic = [
        ScoreRequest(user_id=f"u{user}-{period}", behavior_text=dataset.row_text(user, period))
        for user in range(dataset.n_users)
        for period in range(dataset.n_periods)
    ]
    return base, examples, traffic


def clone_model(base: ZiGong) -> ZiGong:
    """A fresh ZiGong carrying ``base``'s weights (pipelines mutate theirs)."""
    clone = ZiGong(base.config, base.tokenizer)
    clone.apply_lora()
    clone.model.load_state_dict({k: v.copy() for k, v in base.model.state_dict().items()})
    return clone


def recording_obs() -> Observability:
    """An enabled hub with an in-memory event ring."""
    metrics = MetricsRegistry()
    events = EventSink()
    return Observability(metrics=metrics, tracer=Tracer(metrics=metrics, events=events),
                         events=events)


def loop_config(**overrides) -> OnlineConfig:
    defaults = dict(
        drift_window=48,
        min_observations=16,
        n_bins=8,
        retrain_window=64,
        min_retrain_examples=8,
        keep_fraction=0.6,
        retrain_epochs=1,
        shadow_requests=10,
        shadow_window=32,
        gate=PromotionGate(min_shadow_requests=8, min_agreement=0.0,
                           max_accuracy_drop=None, max_miss_increase=None),
    )
    defaults.update(overrides)
    return OnlineConfig(**defaults)


# Any reference far from the live score mass trips PSI immediately once
# min_observations arrive — the "seeded synthetic drift stream".
DRIFTED_REFERENCE = np.linspace(0.9, 1.0, 32)


def make_pipeline(base, work_dir, obs=None, config=None, **kwargs):
    return OnlinePipeline.for_zigong(
        clone_model(base),
        reference_scores=DRIFTED_REFERENCE,
        work_dir=work_dir,
        config=config or loop_config(),
        cluster_config=ClusterConfig(replicas=2),
        obs=obs or recording_obs(),
        **kwargs,
    )


def drive(pipeline, traffic, max_ticks=40, batch=8, until="promotions"):
    """Tick the loop until a promotion (or rollback/gate event) lands."""
    i = 0
    for _ in range(max_ticks):
        requests = [traffic[(i + j) % len(traffic)] for j in range(batch)]
        i += batch
        pipeline.tick(requests)
        if getattr(pipeline.state, until) > 0:
            return
    raise AssertionError(f"no {until} after {max_ticks} ticks (phase={pipeline.phase})")


def transition_phases(obs) -> list[str]:
    return [e["phase"] for e in obs.events.events() if e["kind"] == "pipeline.transition"]


# ----------------------------------------------------------------------
# PipelineState persistence
# ----------------------------------------------------------------------


class TestPipelineState:
    def test_roundtrip(self, tmp_path):
        state = PipelineState(phase=SHADOW, round=3, drift_psi=0.41,
                              reference_scores=[0.1, 0.2], shadow_scored=7,
                              promotions=2, rollbacks=1, gate_failures=4, resumes=5)
        path = tmp_path / "state.json"
        state.save(path)
        assert PipelineState.load(path) == state

    def test_atomic_tmp_cleaned(self, tmp_path):
        path = tmp_path / "state.json"
        PipelineState().save(path)
        assert path.exists()
        assert not path.with_name("state.json.tmp").exists()

    def test_unknown_phase_rejected(self):
        with pytest.raises(PipelineError):
            PipelineState(phase="deployed")

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text("{not json")
        with pytest.raises(PipelineError):
            PipelineState.load(path)

    def test_phase_codes_cover_all_phases(self):
        assert PHASE_CODES[MONITOR] == 0
        assert sorted(PHASE_CODES.values()) == [0, 1, 2, 3]
        state = PipelineState(phase=PROMOTE)
        assert state.code == PHASE_CODES[PROMOTE]


# ----------------------------------------------------------------------
# Promotion gate
# ----------------------------------------------------------------------


class _ConstScorer:
    def __init__(self, value):
        self.value = value

    def score(self, prompt, positive_text="yes", negative_text="no"):
        return self.value


class _EchoScorer:
    """Scores len(prompt)-derived values so streams have variance."""

    def __init__(self, offset=0.0):
        self.offset = offset

    def score(self, prompt, positive_text="yes", negative_text="no"):
        return (len(prompt) % 10) / 10.0 + self.offset


def _shadow_with(primary, shadow, n=20, obs=None):
    deployment = ShadowDeployment(primary, shadow, window=64,
                                  obs=obs or Observability.disabled())
    for i in range(n):
        deployment.score("x" * (i + 1))
    return deployment


def _eval(accuracy, miss=0.0):
    return EvalResult(model="m", dataset="gate", n=10, accuracy=accuracy,
                      f1=accuracy, miss=miss)


class TestPromotionGate:
    def test_validation(self):
        with pytest.raises(ConfigError):
            PromotionGate(min_shadow_requests=0)
        with pytest.raises(ConfigError):
            PromotionGate(min_agreement=1.5)

    def test_too_few_shadow_requests_fails(self):
        shadow = _shadow_with(_EchoScorer(), _EchoScorer(), n=3)
        decision = evaluate_gate(PromotionGate(min_shadow_requests=16), shadow)
        assert not decision.passed
        assert any("shadow requests" in r for r in decision.reasons)

    def test_agreement_pass(self):
        shadow = _shadow_with(_EchoScorer(), _EchoScorer(), n=20)
        decision = evaluate_gate(PromotionGate(min_shadow_requests=8), shadow)
        assert decision.passed
        assert decision.metrics["agreement_rate"] == 1.0

    def test_low_agreement_fails(self):
        shadow = _shadow_with(_ConstScorer(0.9), _ConstScorer(0.1), n=20)
        decision = evaluate_gate(
            PromotionGate(min_shadow_requests=8, min_agreement=0.5), shadow
        )
        assert not decision.passed
        assert any("agreement" in r for r in decision.reasons)

    def test_nan_correlation_fails_explicitly(self):
        # Constant streams: Pearson is undefined (nan), and a gated
        # correlation must treat that as a failure, not a pass.
        shadow = _shadow_with(_ConstScorer(0.4), _ConstScorer(0.4), n=20)
        assert math.isnan(shadow.score_correlation())
        decision = evaluate_gate(
            PromotionGate(min_shadow_requests=8, min_agreement=0.0, min_correlation=0.5),
            shadow,
        )
        assert not decision.passed
        assert any("undefined" in r for r in decision.reasons)

    def test_metric_deltas(self):
        shadow = _shadow_with(_EchoScorer(), _EchoScorer(), n=20)
        gate = PromotionGate(min_shadow_requests=8, min_agreement=0.0,
                             max_accuracy_drop=0.05, max_miss_increase=0.05)
        bad = evaluate_gate(gate, shadow, _eval(0.9), _eval(0.7))
        assert not bad.passed and any("accuracy drop" in r for r in bad.reasons)
        worse_miss = evaluate_gate(gate, shadow, _eval(0.9, miss=0.0), _eval(0.9, miss=0.2))
        assert not worse_miss.passed and any("miss-rate" in r for r in worse_miss.reasons)
        ok = evaluate_gate(gate, shadow, _eval(0.9), _eval(0.89))
        assert ok.passed

    def test_fairness_gaps(self):
        from repro.eval import fairness_report

        shadow = _shadow_with(_EchoScorer(), _EchoScorer(), n=20)
        gate = PromotionGate(min_shadow_requests=8, min_agreement=0.0,
                             max_parity_gap=0.2, max_odds_gap=0.2)
        biased = fairness_report([1, 0, 1, 0], [1, 1, 0, 0], [0, 0, 1, 1])
        decision = evaluate_gate(gate, shadow, candidate_fairness=biased)
        assert not decision.passed

    def test_nan_odds_gap_fails_when_gated(self):
        from repro.eval import fairness_report

        shadow = _shadow_with(_EchoScorer(), _EchoScorer(), n=20)
        # Group B has no positives: its TPR (and hence the odds gap) is nan.
        report = fairness_report([1, 1, 0, 0], [1, 0, 1, 0], [0, 0, 1, 1])
        assert math.isnan(report.equalized_odds_difference)
        gated = evaluate_gate(
            PromotionGate(min_shadow_requests=8, min_agreement=0.0, max_odds_gap=0.3),
            shadow, candidate_fairness=report,
        )
        assert not gated.passed
        assert any("no" in r and "support" in r for r in gated.reasons)
        ungated = evaluate_gate(
            PromotionGate(min_shadow_requests=8, min_agreement=0.0),
            shadow, candidate_fairness=report,
        )
        assert ungated.passed


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------


class TestOnlineConfig:
    @pytest.mark.parametrize("overrides", [
        dict(drift_window=4, n_bins=8),
        dict(min_observations=4, n_bins=8),
        dict(keep_fraction=0.0),
        dict(keep_fraction=1.5),
        dict(influence_val_fraction=1.0),
        dict(retrain_epochs=0),
        dict(shadow_requests=0),
        dict(shadow_window=4, shadow_requests=10),
        dict(min_retrain_examples=0),
    ])
    def test_rejects_bad_values(self, overrides):
        with pytest.raises(ConfigError):
            OnlineConfig(**overrides)

    def test_defaults_valid(self):
        assert OnlineConfig().influence_strategy == "agent"


# ----------------------------------------------------------------------
# Golden end-to-end run
# ----------------------------------------------------------------------


class TestGoldenEndToEnd:
    @pytest.fixture(scope="class")
    def run(self, scenario, tmp_path_factory):
        base, examples, traffic = scenario
        obs = recording_obs()
        work = tmp_path_factory.mktemp("golden")
        pipeline = make_pipeline(base, work, obs=obs)
        pipeline.ingest(examples[48:])
        drive(pipeline, traffic)
        return pipeline, obs, work

    def test_full_phase_sequence(self, run):
        _, obs, _ = run
        assert transition_phases(obs) == [RETRAIN, SHADOW, PROMOTE, MONITOR]

    def test_counters(self, run):
        pipeline, obs, _ = run
        metrics = obs.metrics
        assert metrics.counter("pipeline.drift_trips").value == 1
        assert metrics.counter("pipeline.retrains").value == 1
        assert metrics.counter("pipeline.promotions").value == 1
        assert metrics.counter("pipeline.rollbacks").value == 0
        assert metrics.gauge("pipeline.state").value == PHASE_CODES[MONITOR]
        assert pipeline.state.promotions == 1

    def test_gate_decision_recorded(self, run):
        pipeline, obs, _ = run
        assert pipeline.last_gate is not None and pipeline.last_gate.passed
        gates = [e for e in obs.events.events() if e["kind"] == "pipeline.gate"]
        assert len(gates) == 1 and gates[0]["passed"]

    def test_cluster_serves_candidate_weights(self, run):
        # Post-promotion the cluster's scores match the promoted model's
        # own classifier bit-for-bit (the _verify_deploy contract, but
        # asserted from the outside).
        pipeline, _, _ = run
        from repro.data.templates import CLASSIFICATION_TEMPLATE
        from repro.serving.behavior_card import DEFAULT_QUESTION

        text = "status: months 1-3 paid on time, month 4 overdue"
        [result] = pipeline.cluster.serve([ScoreRequest(user_id="probe", behavior_text=text)])
        prompt = CLASSIFICATION_TEMPLATE.format(sentence=text, question=DEFAULT_QUESTION)
        direct = pipeline.zigong.classifier("probe").score(prompt, "yes", "no")
        assert result.score == pytest.approx(direct, abs=1e-12)

    def test_weight_versions_advanced_on_all_replicas(self, run):
        pipeline, _, _ = run
        versions = pipeline.cluster.weight_versions()
        assert len(versions) == 2
        assert all(v is not None and v > 1 for v in versions.values())

    def test_round_artifacts_persisted(self, run):
        _, _, work = run
        round_dir = work / "round-001"
        assert (round_dir / "selected.jsonl").exists()
        assert (round_dir / "candidate.npz").exists()
        assert (round_dir / "ckpts").is_dir()
        assert (work / "deployed.npz").exists()
        assert (work / "state.json").exists()

    def test_drift_monitor_rebaselined(self, run):
        # After promotion the reference is re-anchored on the approved
        # shadow scores, so the loop does not instantly re-trip.
        pipeline, _, _ = run
        assert pipeline.state.reference_scores != list(DRIFTED_REFERENCE)
        assert pipeline.monitor.n_observed == 0

    def test_influence_filter_kept_fraction(self, run):
        from repro.data import load_jsonl

        pipeline, _, work = run
        selected = load_jsonl(work / "round-001" / "selected.jsonl")
        buffered = min(48, pipeline.config.retrain_window)
        assert len(selected) < buffered
        assert len(selected) >= int(0.5 * pipeline.config.keep_fraction * buffered)


class TestStableStreamNeverTrips:
    def test_matching_reference_stays_in_monitor(self, scenario, tmp_path):
        base, examples, traffic = scenario
        obs = recording_obs()
        # Build the reference from actual live scores: no drift to find.
        probe = make_pipeline(base, tmp_path / "probe", obs=recording_obs())
        live = probe.cluster.serve(traffic[:32])
        reference = [r.score for r in live]
        # Window sized to the reference: once full, the live window holds
        # exactly the reference multiset, so PSI is 0 by construction.
        pipeline = OnlinePipeline.for_zigong(
            clone_model(base),
            reference_scores=reference,
            work_dir=tmp_path / "stable",
            config=loop_config(drift_window=32, min_observations=32),
            cluster_config=ClusterConfig(replicas=2),
            obs=obs,
        )
        pipeline.ingest(examples[48:])
        for _ in range(2):
            for i in range(4):
                pipeline.tick(traffic[8 * i:8 * (i + 1)])
        assert pipeline.phase == MONITOR
        assert obs.metrics.counter("pipeline.drift_trips").value == 0
        assert transition_phases(obs) == []


# ----------------------------------------------------------------------
# Crash-resume (sunny-day restarts; violent kills in test_pipeline_chaos)
# ----------------------------------------------------------------------


class TestResume:
    def test_restart_mid_shadow_recollects_window(self, scenario, tmp_path):
        base, examples, traffic = scenario
        first = make_pipeline(base, tmp_path)
        first.ingest(examples[48:])
        i = 0
        while first.phase != SHADOW:
            first.tick([traffic[(i + j) % len(traffic)] for j in range(8)])
            i += 8
        # A few shadow comparisons land, then the daemon "dies".
        first.tick(traffic[:4])
        assert first.state.shadow_scored > 0

        second = make_pipeline(base, tmp_path)
        assert second.phase == SHADOW
        assert second.state.resumes == 1
        # Shadow evidence is recollected from scratch after a restart.
        assert second.state.shadow_scored == 0
        drive(second, traffic)
        assert second.state.promotions == 1

    def test_restart_after_promotion_serves_promoted_weights(self, scenario, tmp_path):
        base, examples, traffic = scenario
        first = make_pipeline(base, tmp_path)
        first.ingest(examples[48:])
        drive(first, traffic)
        probe = traffic[0]
        [before] = first.cluster.serve([probe])

        # Restart from a stale base clone: the persisted deployed.npz
        # must win over the (pre-promotion) weights the clone carries.
        second = make_pipeline(base, tmp_path)
        [after] = second.cluster.serve([probe])
        assert after.score == pytest.approx(before.score, abs=1e-12)
        assert second.state.promotions == 1

    def test_fresh_workdir_starts_in_monitor(self, scenario, tmp_path):
        base, _, _ = scenario
        pipeline = make_pipeline(base, tmp_path)
        assert pipeline.phase == MONITOR
        assert pipeline.state.resumes == 0


# ----------------------------------------------------------------------
# Guard rails
# ----------------------------------------------------------------------


class TestGuards:
    def test_eval_groups_must_align(self, scenario, tmp_path):
        base, _, _ = scenario
        from repro.eval import EvalSample

        samples = [EvalSample(prompt="p", label=1, positive_text="yes", negative_text="no")]
        with pytest.raises(ConfigError):
            make_pipeline(base, tmp_path, eval_samples=samples, eval_groups=[0, 1])

    def test_empty_tick_is_a_noop(self, scenario, tmp_path):
        base, _, _ = scenario
        pipeline = make_pipeline(base, tmp_path)
        assert pipeline.tick([]) == []
        assert pipeline.phase == MONITOR

    def test_ingest_bounded_by_retrain_window(self, scenario, tmp_path):
        base, examples, _ = scenario
        pipeline = make_pipeline(base, tmp_path, config=loop_config(retrain_window=16))
        pipeline.ingest(examples)
        assert len(pipeline._buffer) == 16
        assert pipeline._buffer[-1] is examples[-1]
