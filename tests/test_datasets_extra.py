"""Tests for the sentiment and financial-auditing datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DataError
from repro.datasets import (
    SENTIMENT_CLASSES,
    available_datasets,
    load_dataset,
    make_audit,
    make_sentiment,
)
from repro.data import build_sentiment_examples


class TestSentimentDataset:
    def test_shapes_and_classes(self):
        ds = make_sentiment(n=300, seed=0)
        assert len(ds) == 300
        assert set(np.unique(ds.labels)) == {0, 1, 2}
        assert ds.label_text(0) in SENTIMENT_CLASSES

    def test_deterministic(self):
        a = make_sentiment(n=50, seed=3)
        b = make_sentiment(n=50, seed=3)
        assert a.texts == b.texts
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_headline_structure(self):
        ds = make_sentiment(n=20, seed=0)
        for text in ds.texts:
            assert "shares" in text
            assert "after" in text

    def test_lexicon_matches_label_without_noise(self):
        from repro.datasets.sentiment import _VERBS

        ds = make_sentiment(n=200, seed=0, noise=0.0)
        for text, label in zip(ds.texts, ds.labels):
            verb = text.split()[2]
            assert verb in _VERBS[SENTIMENT_CLASSES[label]]

    def test_noise_rate_validation(self):
        with pytest.raises(DataError):
            make_sentiment(noise=1.0)

    def test_signal_learnable(self):
        """A bag-of-words model must classify sentiment well."""
        from repro.ml import HashingVectorizer, LogisticRegression

        ds = make_sentiment(n=600, seed=0, noise=0.05)
        X = HashingVectorizer(n_features=128).transform(ds.texts)
        # One-vs-rest on "good": binary view is enough to verify signal.
        y = (ds.labels == 2).astype(np.int64)
        model = LogisticRegression().fit(X[:400], y[:400])
        acc = (model.predict(X[400:]) == y[400:]).mean()
        assert acc > 0.85

    def test_examples_use_sentiment_template(self):
        ds = make_sentiment(n=10, seed=0)
        examples = build_sentiment_examples(ds)
        assert len(examples) == 10
        assert "what is the sentiment" in examples[0].prompt
        assert examples[0].answer in SENTIMENT_CLASSES


class TestAuditDataset:
    def test_registered(self):
        assert "financial_audit" in available_datasets()
        ds = load_dataset("financial_audit", n=100, seed=0)
        assert ds.task == "financial_auditing"

    def test_irregular_rate(self):
        ds = make_audit(n=2000, seed=0, irregular_rate=0.12)
        assert ds.positive_rate == pytest.approx(0.12, abs=0.03)

    def test_red_flags_raise_risk(self):
        """Duplicate invoices and missing approvals must skew positive."""
        ds = make_audit(n=3000, seed=0)
        duplicate = ds.X[:, 6] == 1
        approved = ds.X[:, 5] == 1
        assert ds.y[duplicate].mean() > ds.y[~duplicate].mean()
        assert ds.y[~approved].mean() > ds.y[approved].mean()

    def test_verbalization(self):
        ds = make_audit(n=50, seed=0)
        text = ds.row_text(0)
        assert "duplicate_invoice=" in text
        assert "has_approval=" in text

    def test_signal_learnable(self):
        from repro.ml import LogisticRegression

        ds = make_audit(n=800, seed=0)
        model = LogisticRegression().fit(ds.X, ds.y)
        acc = (model.predict(ds.X) == ds.y).mean()
        assert acc > max(ds.positive_rate, 1 - ds.positive_rate) + 0.02
