"""Behavior Card service tests."""

from __future__ import annotations

import pytest

from repro.errors import ServingError
from repro.serving import BehaviorCardService, reset_deprecation_warnings


class _StubClassifier:
    """Deterministic scorer: P(default) derived from the text length."""

    def __init__(self):
        self.calls = 0

    def score(self, prompt, positive, negative):
        self.calls += 1
        return (len(prompt) % 10) / 10.0 + 0.05


class _Clock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        self.now += 1.0
        return self.now


@pytest.fixture
def service():
    return BehaviorCardService(_StubClassifier(), threshold=0.5, cache_size=4, clock=_Clock())


class TestDecisions:
    def test_decision_fields(self, service):
        decision = service.decide("u1", "spend=low repay=high")
        assert decision.user_id == "u1"
        assert 0.0 <= decision.score <= 1.0
        assert decision.approved == (decision.score < 0.5)
        assert decision.threshold == 0.5
        assert not decision.cached

    def test_empty_text_rejected(self, service):
        with pytest.raises(ServingError):
            service.decide("u1", "   ")

    def test_batch(self, service):
        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning, match="tuples"):
            decisions = service.decide_batch([("u1", "a=1"), ("u2", "b=2")])
        assert [d.user_id for d in decisions] == ["u1", "u2"]

    def test_invalid_config(self):
        with pytest.raises(ServingError):
            BehaviorCardService(_StubClassifier(), threshold=0.0)
        with pytest.raises(ServingError):
            BehaviorCardService(_StubClassifier(), cache_size=0)


class TestCache:
    def test_repeat_request_cached(self, service):
        service.decide("u1", "same=text")
        second = service.decide("u2", "same=text")
        assert second.cached
        assert service.classifier.calls == 1

    def test_cache_eviction_lru(self, service):
        for i in range(5):  # cache_size=4, first entry evicted
            service.decide("u", f"text={i}")
        service.decide("u", "text=0")
        assert service.classifier.calls == 6  # re-scored after eviction

    def test_cache_hit_rate_stat(self, service):
        service.decide("u", "x=1")
        service.decide("u", "x=1")
        assert service.stats.cache_hit_rate == 0.5


class TestAuditLog:
    def test_every_decision_logged(self, service):
        service.decide("u1", "a=1")
        service.decide("u2", "b=2")
        log = service.audit_log()
        assert len(log) == 2
        assert log[0].user_id == "u1"
        assert log[0].timestamp < log[1].timestamp
        assert "question:" in log[0].prompt

    def test_cached_decisions_still_logged(self, service):
        service.decide("u1", "same")
        service.decide("u2", "same")
        assert len(service.audit_log()) == 2

    def test_log_is_a_copy(self, service):
        service.decide("u1", "a=1")
        service.audit_log().clear()
        assert len(service.audit_log()) == 1


class TestStats:
    def test_approval_rate(self, service):
        # Stub scores depend on prompt length; collect a spread.
        for i in range(10):
            service.decide("u", f"feature={'x' * i}")
        stats = service.stats
        assert stats.requests == 10
        assert 0.0 <= stats.approval_rate <= 1.0

    def test_zero_requests(self):
        service = BehaviorCardService(_StubClassifier())
        assert service.stats.approval_rate == 0.0
        assert service.stats.cache_hit_rate == 0.0


class TestEndToEndWithModel:
    def test_with_fitted_zigong(self, fitted_zigong):
        from repro.datasets import make_behavior

        service = BehaviorCardService(fitted_zigong.classifier(), threshold=0.5)
        ds = make_behavior(n_users=3, n_periods=2, seed=0)
        decision = service.decide("user0", ds.row_text(0, 1))
        assert 0.0 <= decision.score <= 1.0
        assert len(service.audit_log()) == 1
