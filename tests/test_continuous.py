"""Continuous batching scheduler: parity, admission policy, streaming.

The load-bearing guarantee is **arrival-schedule independence**: for any
interleaving of admits and retirements, every row's output is
bit-identical to sequential :func:`~repro.nn.generation.generate` and to
one-shot :func:`~repro.nn.generation.generate_batch`.  The hypothesis
property drives random arrival schedules and admission policies against
that invariant, plus the structural ones (streams are prefixes of final
outputs, no row is starved, finalization is exactly-once).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, ServingError, ShapeError
from repro.nn import (
    AdmissionPolicy,
    ContinuousScheduler,
    GenerationConfig,
    GenerationStream,
    MistralTiny,
    generate,
    generate_batch,
    generate_continuous,
)
from repro.nn.cache import LayerKVCache, PrefixCache
from repro.obs import Observability

from conftest import TINY, ragged_prompts


@pytest.fixture(scope="module")
def model():
    return MistralTiny(TINY, rng=0)


@pytest.fixture(scope="module")
def prompts():
    return ragged_prompts(TINY.vocab_size, lengths=(5, 9, 3, 12, 7, 9, 4, 11))


GREEDY = GenerationConfig(max_new_tokens=8)
SAMPLED = GenerationConfig(max_new_tokens=8, temperature=0.8, top_k=5, seed=3)
STOPPING = GenerationConfig(max_new_tokens=6, stop_tokens=(7, 11))


class TestParity:
    @pytest.mark.parametrize("config", [GREEDY, SAMPLED, STOPPING], ids=["greedy", "sampled", "stop"])
    def test_all_at_once_matches_generate_batch(self, model, prompts, config):
        expected = generate_batch(model, prompts, config)
        got = generate_continuous(model, prompts, config)
        assert got == expected

    @pytest.mark.parametrize("config", [GREEDY, SAMPLED, STOPPING], ids=["greedy", "sampled", "stop"])
    def test_staggered_arrivals_match_sequential(self, model, prompts, config):
        arrivals = [0, 0, 2, 3, 3, 5, 8, 9]
        expected = [generate(model, p, config) for p in prompts]
        got = generate_continuous(model, prompts, config, arrivals=arrivals)
        assert got == expected

    def test_reverse_arrival_order(self, model, prompts):
        expected = generate_batch(model, prompts, GREEDY)
        arrivals = list(range(len(prompts)))[::-1]
        got = generate_continuous(model, prompts, GREEDY, arrivals=arrivals)
        assert got == expected

    def test_tight_policy_does_not_change_outputs(self, model, prompts):
        expected = generate_batch(model, prompts, SAMPLED)
        policy = AdmissionPolicy(max_live_rows=2, max_prefills_per_step=1)
        got = generate_continuous(model, prompts, SAMPLED, policy=policy)
        assert got == expected

    def test_prefix_cache_reuse_preserves_parity(self, model, prompts):
        prompts = list(prompts)
        prompts[5] = prompts[1].copy()  # exact repeat -> full prefix hit
        expected = generate_batch(model, prompts, GREEDY)
        cache = PrefixCache(16, obs=Observability.disabled())
        got = generate_continuous(
            model,
            prompts,
            GREEDY,
            arrivals=[0, 0, 1, 1, 2, 2, 3, 3],
            policy=AdmissionPolicy(max_live_rows=4, max_prefills_per_step=2),
            prefix_cache=cache,
        )
        assert got == expected
        assert cache.stats.hits >= 1

    def test_single_prompt_matches_generate(self, model, prompts):
        expected = generate(model, prompts[0], STOPPING)
        got = generate_continuous(model, [prompts[0]], STOPPING)
        assert got == [expected]

    def test_max_new_tokens_one_retires_at_prefill(self, model, prompts):
        config = GenerationConfig(max_new_tokens=1)
        expected = generate_batch(model, prompts, config)
        got = generate_continuous(model, prompts, config, arrivals=[0, 1, 2, 3, 4, 5, 6, 7])
        assert got == expected
        assert all(len(row) == 1 for row in got)


class TestSchedulerMechanics:
    def test_live_rows_never_exceed_policy(self, model, prompts):
        policy = AdmissionPolicy(max_live_rows=3, max_prefills_per_step=2)
        scheduler = ContinuousScheduler(
            model, GREEDY, policy=policy, obs=Observability.disabled()
        )
        for p in prompts:
            scheduler.submit(p)
        peak = 0
        while scheduler.has_work:
            scheduler.step()
            peak = max(peak, scheduler.live_rows)
        assert peak <= 3

    def test_prefills_per_step_bounds_admission(self, model, prompts):
        policy = AdmissionPolicy(max_live_rows=8, max_prefills_per_step=1)
        scheduler = ContinuousScheduler(
            model, GREEDY, policy=policy, obs=Observability.disabled()
        )
        for p in prompts[:4]:
            scheduler.submit(p)
        scheduler.step()
        assert scheduler.live_rows <= 1
        scheduler.step()
        assert scheduler.live_rows <= 2

    def test_on_token_callback_streams_every_token(self, model, prompts):
        seen: dict[str, list[int]] = {}

        def on_token(stream, token):
            seen.setdefault(stream.request_id, []).append(token)

        scheduler = ContinuousScheduler(model, GREEDY, obs=Observability.disabled())
        streams = [scheduler.submit(p, on_token=on_token) for p in prompts[:4]]
        scheduler.drain()
        for stream in streams:
            assert seen[stream.request_id] == list(stream.tokens)
            assert stream.done and stream.error is None
            assert stream.result() == list(stream.tokens)

    def test_empty_prompt_rejected(self, model):
        scheduler = ContinuousScheduler(model, GREEDY, obs=Observability.disabled())
        with pytest.raises(ConfigError):
            scheduler.submit(np.array([], dtype=np.int64))

    def test_idle_step_is_noop(self, model):
        scheduler = ContinuousScheduler(model, GREEDY, obs=Observability.disabled())
        assert scheduler.step() == 0
        assert not scheduler.has_work

    def test_abort_all_finalizes_with_error(self, model, prompts):
        scheduler = ContinuousScheduler(model, GREEDY, obs=Observability.disabled())
        streams = [scheduler.submit(p) for p in prompts[:3]]
        scheduler.step()  # some rows live, with partial tokens
        partial = [list(s.tokens) for s in streams]
        error = RuntimeError("model path down")
        aborted = scheduler.abort_all(error)
        assert set(map(id, aborted)) == set(map(id, streams))
        for stream, before in zip(streams, partial):
            assert stream.done and stream.error is error
            assert list(stream.tokens) == before  # partial stream preserved
            with pytest.raises(RuntimeError):
                stream.result()
        assert not scheduler.has_work
        assert scheduler.step() == 0

    def test_counters_track_admit_retire_stream(self, model, prompts):
        obs = Observability.create()
        scheduler = ContinuousScheduler(model, GREEDY, obs=obs)
        for p in prompts[:5]:
            scheduler.submit(p)
        scheduler.drain()
        metrics = obs.metrics
        assert metrics.counter("generation.continuous.admitted").value == 5
        assert metrics.counter("generation.continuous.retired").value == 5
        total = sum(GREEDY.max_new_tokens for _ in range(5))
        assert metrics.counter("generation.continuous.stream_tokens").value == total
        assert metrics.counter("generation.continuous.steps").value > 0
        assert metrics.gauge("generation.continuous.live_rows").value == 0
        assert metrics.gauge("generation.continuous.waiting").value == 0


class TestStreamGuards:
    def test_finalize_twice_raises(self):
        stream = GenerationStream("s")
        stream._finalize()
        with pytest.raises(ServingError):
            stream._finalize()

    def test_emit_after_finalize_raises(self):
        stream = GenerationStream("s")
        stream._emit(3)
        stream._finalize()
        with pytest.raises(ServingError):
            stream._emit(4)

    def test_result_before_done_raises(self):
        stream = GenerationStream("s")
        with pytest.raises(ServingError):
            stream.result()


class TestAdmitPrimitives:
    def test_admission_policy_validation(self):
        with pytest.raises(ConfigError):
            AdmissionPolicy(max_live_rows=0)
        with pytest.raises(ConfigError):
            AdmissionPolicy(max_prefills_per_step=0)

    def test_layer_admit_rows_pads_shorter_side(self):
        rng = np.random.default_rng(0)
        a = LayerKVCache.from_arrays(
            rng.normal(size=(2, 2, 5, 4)).astype(np.float32),
            rng.normal(size=(2, 2, 5, 4)).astype(np.float32),
        )
        bk = rng.normal(size=(1, 2, 3, 4)).astype(np.float32)
        bv = rng.normal(size=(1, 2, 3, 4)).astype(np.float32)
        b = LayerKVCache.from_arrays(bk, bv)
        a.admit_rows(b)
        assert a.batch_size == 3
        assert len(a) == 5
        k, v = a.views()
        np.testing.assert_array_equal(k[2, :, :3], bk[0])
        np.testing.assert_array_equal(k[2, :, 3:], 0.0)  # padded, masked slots
        np.testing.assert_array_equal(v[2, :, :3], bv[0])

    def test_layer_admit_rows_rejects_offset_and_shape_mismatch(self):
        rng = np.random.default_rng(0)
        a = LayerKVCache.from_arrays(
            rng.normal(size=(1, 2, 4, 4)).astype(np.float32),
            rng.normal(size=(1, 2, 4, 4)).astype(np.float32),
        )
        offset = LayerKVCache.from_arrays(
            rng.normal(size=(1, 2, 4, 4)).astype(np.float32),
            rng.normal(size=(1, 2, 4, 4)).astype(np.float32),
            offset=2,
        )
        with pytest.raises(ShapeError):
            a.admit_rows(offset)
        wrong_heads = LayerKVCache.from_arrays(
            rng.normal(size=(1, 4, 4, 4)).astype(np.float32),
            rng.normal(size=(1, 4, 4, 4)).astype(np.float32),
        )
        with pytest.raises(ShapeError):
            a.admit_rows(wrong_heads)
        empty = LayerKVCache()
        with pytest.raises(ShapeError):
            a.admit_rows(empty)


class TestInterleavingProperty:
    """Hypothesis: random schedules never change outputs or break streams."""

    def test_random_interleavings(self, model):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        base_prompts = ragged_prompts(TINY.vocab_size, lengths=(5, 9, 3, 12, 7, 9))
        config = GenerationConfig(max_new_tokens=6, temperature=0.6, seed=11, stop_tokens=(9,))
        expected = generate_batch(model, base_prompts, config)

        @settings(max_examples=15, deadline=None)
        @given(
            arrivals=st.lists(
                st.integers(min_value=0, max_value=12), min_size=6, max_size=6
            ),
            live=st.integers(min_value=1, max_value=6),
            per_step=st.integers(min_value=1, max_value=4),
        )
        def check(arrivals, live, per_step):
            policy = AdmissionPolicy(max_live_rows=live, max_prefills_per_step=per_step)
            scheduler = ContinuousScheduler(
                model, config, policy=policy, obs=Observability.disabled()
            )
            prefixes: dict[str, list[list[int]]] = {}

            def on_token(stream, token):
                prefixes.setdefault(stream.request_id, []).append(list(stream.tokens))

            order = sorted(range(6), key=lambda i: (arrivals[i], i))
            streams: list[GenerationStream | None] = [None] * 6
            cursor = 0
            steps = 0
            step_no = 0
            while cursor < 6 or scheduler.has_work:
                while cursor < 6 and arrivals[order[cursor]] <= step_no:
                    i = order[cursor]
                    streams[i] = scheduler.submit(
                        base_prompts[i], on_token=on_token, request_id=f"p{i}"
                    )
                    cursor += 1
                scheduler.step()
                step_no += 1
                steps += 1
                assert steps < 500, "scheduler starved a row"
            for i, stream in enumerate(streams):
                # No starvation, exactly-once finalization, correct output.
                assert stream.done and stream.error is None
                assert list(stream.tokens) == expected[i]
                with pytest.raises(ServingError):
                    stream._finalize()
                # Every streamed prefix was a prefix of the final output.
                for prefix in prefixes[f"p{i}"]:
                    assert prefix == expected[i][: len(prefix)]

        check()
