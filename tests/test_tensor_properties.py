"""Hypothesis property tests for the autograd engine.

These complement the point-wise numerical gradchecks with algebraic
invariants that must hold for *any* input.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import Tensor, cross_entropy, log_softmax, softmax


def arrays(shape=(3, 4), lo=-3.0, hi=3.0):
    return hnp.arrays(
        dtype=np.float32,
        shape=shape,
        elements=st.floats(lo, hi, width=32, allow_nan=False),
    )


class TestAlgebraicInvariants:
    @given(arrays())
    @settings(max_examples=40, deadline=None)
    def test_sum_grad_is_ones(self, data):
        x = Tensor(data, requires_grad=True)
        x.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(data))

    @given(arrays(), st.floats(-2.0, 2.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_grad_linear_in_scale(self, data, scale):
        """d(c·sum(x))/dx == c for every c."""
        x = Tensor(data, requires_grad=True)
        (x.sum() * float(scale)).backward()
        np.testing.assert_allclose(x.grad, np.full_like(data, np.float32(scale)), atol=1e-5)

    @given(arrays())
    @settings(max_examples=40, deadline=None)
    def test_add_sub_cancel(self, data):
        """grad of sum(x + x − x) is exactly ones."""
        x = Tensor(data, requires_grad=True)
        (x + x - x).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(data), atol=1e-6)

    @given(arrays(shape=(4, 3)))
    @settings(max_examples=40, deadline=None)
    def test_double_transpose_identity(self, data):
        x = Tensor(data, requires_grad=True)
        y = x.swapaxes(0, 1).swapaxes(0, 1)
        np.testing.assert_allclose(y.numpy(), data)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(data))

    @given(arrays(shape=(2, 5)))
    @settings(max_examples=40, deadline=None)
    def test_softmax_simplex(self, data):
        probs = softmax(Tensor(data)).numpy()
        assert (probs >= 0).all()
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones(2), rtol=1e-4)

    @given(arrays(shape=(2, 5)), st.floats(-5.0, 5.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_softmax_shift_invariance(self, data, shift):
        a = softmax(Tensor(data)).numpy()
        b = softmax(Tensor(data + np.float32(shift))).numpy()
        np.testing.assert_allclose(a, b, atol=1e-5)

    @given(arrays(shape=(3, 6)))
    @settings(max_examples=40, deadline=None)
    def test_log_softmax_le_zero(self, data):
        logp = log_softmax(Tensor(data)).numpy()
        assert (logp <= 1e-6).all()

    @given(
        arrays(shape=(4, 6)),
        hnp.arrays(dtype=np.int64, shape=(4,), elements=st.integers(0, 5)),
    )
    @settings(max_examples=40, deadline=None)
    def test_cross_entropy_nonnegative_and_consistent(self, logits, targets):
        loss = cross_entropy(Tensor(logits), targets).item()
        assert loss >= -1e-6
        logp = log_softmax(Tensor(logits)).numpy()
        expected = -logp[np.arange(4), targets].mean()
        assert abs(loss - expected) < 1e-4

    @given(arrays(shape=(3, 4)), arrays(shape=(4, 2)))
    @settings(max_examples=30, deadline=None)
    def test_matmul_grad_shapes(self, a_data, b_data):
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == a_data.shape
        assert b.grad.shape == b_data.shape

    @given(arrays(shape=(3, 1)), arrays(shape=(1, 4)))
    @settings(max_examples=30, deadline=None)
    def test_broadcast_grad_shapes_preserved(self, a_data, b_data):
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        (a * b).sum().backward()
        assert a.grad.shape == (3, 1)
        assert b.grad.shape == (1, 4)
        # Broadcast sum-reduction: d sum(a*b)/d a[i,0] = sum_j b[0,j].
        np.testing.assert_allclose(a.grad, np.full((3, 1), b_data.sum()), atol=1e-3)
        np.testing.assert_allclose(b.grad, np.full((1, 4), a_data.sum()), atol=1e-3)
