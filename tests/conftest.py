"""Shared fixtures: tiny models, datasets and checkpoint directories.

Heavy builders live here once, session-scoped, instead of being
duplicated per test file: the ZiGong template (tokenizer + config
derivation), the fine-tuned-with-checkpoints explain model, and the
deterministic serving stubs.  Keeping them shared is what holds tier-1
wall-clock down as the suite grows: deduplicating the builders across
test_serving_engine / test_serving_explain / test_generation_batch /
test_core_zigong took those four files from 7.3s to 5.5s (single-core
CI box, same 105 tests).
"""

from __future__ import annotations

import dataclasses
import os

import numpy as np
import pytest

try:
    from hypothesis import settings as _hyp_settings

    # The serving-tier property suite leaves max_examples to the active
    # profile: thorough locally, bounded in CI (HYPOTHESIS_PROFILE=ci).
    # Tests that pin their own @settings(max_examples=...) are unaffected.
    _hyp_settings.register_profile("default", max_examples=200, deadline=None)
    _hyp_settings.register_profile("ci", max_examples=40, deadline=None)
    _hyp_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
except ImportError:  # pragma: no cover - hypothesis ships with the dev env
    pass

from repro.config import test_config as make_test_config
from repro.core import ZiGong
from repro.data import build_classification_examples
from repro.datasets import make_german
from repro.nn import MistralTiny, ModelConfig


TINY = ModelConfig(
    vocab_size=64,
    d_model=32,
    n_layers=2,
    n_heads=4,
    n_kv_heads=2,
    d_ff=64,
    max_seq_len=32,
    sliding_window=16,
)


@pytest.fixture
def tiny_config() -> ModelConfig:
    return TINY


@pytest.fixture
def tiny_model(tiny_config) -> MistralTiny:
    return MistralTiny(tiny_config, rng=0)


@pytest.fixture
def token_batch(tiny_config):
    rng = np.random.default_rng(0)
    return rng.integers(5, tiny_config.vocab_size, size=(2, 12))


@pytest.fixture(scope="session")
def german_small():
    return make_german(n=160, seed=0)


@pytest.fixture(scope="session")
def german_examples(german_small):
    return build_classification_examples(german_small)


@pytest.fixture(scope="session")
def fitted_zigong(german_examples):
    """A ZiGong model quickly fine-tuned on a small german split (shared)."""
    cfg = make_test_config()
    cfg = dataclasses.replace(
        cfg, training=dataclasses.replace(cfg.training, epochs=6), base_lr=5e-3
    )
    zigong = ZiGong.from_examples(german_examples, config=cfg)
    zigong.finetune(german_examples[:96])
    return zigong


@pytest.fixture(scope="session")
def zigong_template(german_examples):
    """Tokenizer + config derived once from the small german corpus.

    ``ZiGong.from_examples`` retrains a tokenizer every call; tests that
    need a *fresh, untuned* model should instead clone this template via
    :func:`make_zigong` — seeded init makes the clone weight-identical
    to a from_examples build over the same slice.
    """
    return ZiGong.from_examples(german_examples[:32])


@pytest.fixture
def make_zigong(zigong_template):
    """Factory for fresh untuned ZiGong models sharing one tokenizer."""

    def make() -> ZiGong:
        return ZiGong(zigong_template.config, zigong_template.tokenizer)

    return make


@pytest.fixture(scope="session")
def explained_zigong(german_examples, tmp_path_factory):
    """A fine-tuned ZiGong with checkpoint trail, for influence serving.

    Returns ``(zigong, examples, checkpoints)`` — everything needed to
    build an :class:`~repro.serving.ExplainService` (or to golden-test
    deploys of a checkpointed model) without re-finetuning per module.
    """
    from repro.training.checkpoint import CheckpointManager

    examples = german_examples[:14]
    zigong = ZiGong.from_examples(examples, config=make_test_config())
    checkpoint_dir = tmp_path_factory.mktemp("explain-ckpts")
    zigong.finetune(examples, checkpoint_dir=checkpoint_dir)
    checkpoints = CheckpointManager(checkpoint_dir).checkpoints()
    return zigong, examples, checkpoints


# ----------------------------------------------------------------------
# Serving stubs (shared by the engine, cluster and property suites)
# ----------------------------------------------------------------------


class StubClassifier:
    """Deterministic scorer: P(default) derived from the prompt length."""

    def __init__(self, fail: bool = False):
        self.calls = 0
        self.batch_calls = 0
        self.fail = fail

    def _score(self, prompt):
        return (len(prompt) % 10) / 10.0 + 0.05

    def score(self, prompt, positive, negative):
        if self.fail:
            raise RuntimeError("model path down")
        self.calls += 1
        return self._score(prompt)

    def score_batch(self, prompts, positive, negative):
        if self.fail:
            raise RuntimeError("model path down")
        self.batch_calls += 1
        self.calls += len(prompts)
        return np.array([self._score(p) for p in prompts])


class StepClock:
    """Wall clock advancing a fixed step per call — deterministic latency."""

    def __init__(self, now: float = 1000.0, step: float = 1.0):
        self.now = now
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


def make_stub_service(**kwargs):
    """A BehaviorCardService over the stub classifier and step clock."""
    from repro.serving import BehaviorCardConfig, BehaviorCardService

    defaults = dict(
        config=BehaviorCardConfig(cache_size=32, max_batch_size=4, queue_capacity=8),
        clock=StepClock(),
    )
    defaults.update(kwargs)
    return BehaviorCardService(StubClassifier(), **defaults)


# ----------------------------------------------------------------------
# Generation prompts (shared by batched-decoding and cache suites)
# ----------------------------------------------------------------------


RAGGED_LENGTHS = (5, 9, 3, 12, 7, 9)


def ragged_prompts(vocab_size: int, lengths=RAGGED_LENGTHS, seed: int = 0):
    """Seeded integer prompts of uneven lengths (token ids >= 5)."""
    rng = np.random.default_rng(seed)
    return [rng.integers(5, vocab_size, size=n).astype(np.int64) for n in lengths]


def numeric_grad(f, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar function ``f`` at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i].copy()
        flat[i] = orig + eps
        up = f()
        flat[i] = orig - eps
        down = f()
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return grad
