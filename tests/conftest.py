"""Shared fixtures: tiny models, datasets and checkpoint directories."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.config import test_config as make_test_config
from repro.core import ZiGong
from repro.data import build_classification_examples
from repro.datasets import make_german
from repro.nn import MistralTiny, ModelConfig


TINY = ModelConfig(
    vocab_size=64,
    d_model=32,
    n_layers=2,
    n_heads=4,
    n_kv_heads=2,
    d_ff=64,
    max_seq_len=32,
    sliding_window=16,
)


@pytest.fixture
def tiny_config() -> ModelConfig:
    return TINY


@pytest.fixture
def tiny_model(tiny_config) -> MistralTiny:
    return MistralTiny(tiny_config, rng=0)


@pytest.fixture
def token_batch(tiny_config):
    rng = np.random.default_rng(0)
    return rng.integers(5, tiny_config.vocab_size, size=(2, 12))


@pytest.fixture(scope="session")
def german_small():
    return make_german(n=160, seed=0)


@pytest.fixture(scope="session")
def german_examples(german_small):
    return build_classification_examples(german_small)


@pytest.fixture(scope="session")
def fitted_zigong(german_examples):
    """A ZiGong model quickly fine-tuned on a small german split (shared)."""
    cfg = make_test_config()
    cfg = dataclasses.replace(
        cfg, training=dataclasses.replace(cfg.training, epochs=6), base_lr=5e-3
    )
    zigong = ZiGong.from_examples(german_examples, config=cfg)
    zigong.finetune(german_examples[:96])
    return zigong


def numeric_grad(f, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar function ``f`` at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i].copy()
        flat[i] = orig + eps
        up = f()
        flat[i] = orig - eps
        down = f()
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return grad
