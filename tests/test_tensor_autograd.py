"""Numerical gradient checks for every Tensor op."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GradientError, ShapeError
from repro.tensor import Tensor, no_grad, is_grad_enabled

from conftest import numeric_grad


def check_unary(op, shape=(3, 4), seed=0, positive=False, atol=2e-2):
    rng = np.random.default_rng(seed)
    data = rng.normal(0.5, 0.4, size=shape).astype(np.float32)
    if positive:
        data = np.abs(data) + 0.5
    x = Tensor(data.copy(), requires_grad=True)
    out = op(x)
    out.sum().backward()

    def f():
        return float(op(Tensor(x.data)).numpy().sum())

    expected = numeric_grad(f, x.data)
    np.testing.assert_allclose(x.grad, expected, atol=atol, rtol=1e-2)


class TestUnaryGradients:
    def test_exp(self):
        check_unary(lambda t: t.exp())

    def test_log(self):
        check_unary(lambda t: t.log(), positive=True)

    def test_sqrt(self):
        check_unary(lambda t: t.sqrt(), positive=True)

    def test_tanh(self):
        check_unary(lambda t: t.tanh())

    def test_sigmoid(self):
        check_unary(lambda t: t.sigmoid())

    def test_relu(self):
        check_unary(lambda t: t.relu())

    def test_silu(self):
        check_unary(lambda t: t.silu())

    def test_gelu(self):
        check_unary(lambda t: t.gelu())

    def test_neg(self):
        check_unary(lambda t: -t)

    def test_pow(self):
        check_unary(lambda t: t**3)

    def test_pow_negative_exponent(self):
        check_unary(lambda t: t**-0.5, positive=True)


class TestBinaryGradients:
    def _check(self, op, a_shape, b_shape, atol=2e-2):
        rng = np.random.default_rng(1)
        a = Tensor(rng.normal(1.0, 0.3, a_shape).astype(np.float32), requires_grad=True)
        b = Tensor(rng.normal(1.5, 0.3, b_shape).astype(np.float32), requires_grad=True)
        op(a, b).sum().backward()

        def fa():
            return float(op(Tensor(a.data), Tensor(b.data)).numpy().sum())

        np.testing.assert_allclose(a.grad, numeric_grad(fa, a.data), atol=atol, rtol=1e-2)
        np.testing.assert_allclose(b.grad, numeric_grad(fa, b.data), atol=atol, rtol=1e-2)

    def test_add(self):
        self._check(lambda a, b: a + b, (3, 4), (3, 4))

    def test_add_broadcast(self):
        self._check(lambda a, b: a + b, (3, 4), (4,))

    def test_sub(self):
        self._check(lambda a, b: a - b, (2, 3), (2, 3))

    def test_mul(self):
        self._check(lambda a, b: a * b, (3, 4), (3, 4))

    def test_mul_broadcast_scalar_shape(self):
        self._check(lambda a, b: a * b, (3, 4), (1, 4))

    def test_div(self):
        self._check(lambda a, b: a / b, (3, 4), (3, 4))

    def test_matmul_2d(self):
        self._check(lambda a, b: a @ b, (3, 4), (4, 5))

    def test_matmul_batched(self):
        self._check(lambda a, b: a @ b, (2, 3, 4), (2, 4, 5))

    def test_matmul_broadcast_batch(self):
        self._check(lambda a, b: a @ b, (2, 3, 4), (4, 5))


class TestReductions:
    def _check(self, op, shape=(3, 4)):
        rng = np.random.default_rng(2)
        x = Tensor(rng.normal(0, 1, shape).astype(np.float32), requires_grad=True)
        op(x).sum().backward()

        def f():
            return float(op(Tensor(x.data)).numpy().sum())

        np.testing.assert_allclose(x.grad, numeric_grad(f, x.data), atol=2e-2, rtol=1e-2)

    def test_sum_all(self):
        self._check(lambda t: t.sum())

    def test_sum_axis(self):
        self._check(lambda t: t.sum(axis=1))

    def test_sum_keepdims(self):
        self._check(lambda t: t.sum(axis=0, keepdims=True))

    def test_mean(self):
        self._check(lambda t: t.mean())

    def test_mean_axis(self):
        self._check(lambda t: t.mean(axis=-1, keepdims=True))

    def test_var(self):
        self._check(lambda t: t.var(axis=-1, keepdims=True))

    def test_max_axis(self):
        rng = np.random.default_rng(3)
        # Distinct values so the max subgradient is unambiguous.
        data = rng.permutation(12).reshape(3, 4).astype(np.float32)
        x = Tensor(data, requires_grad=True)
        x.max(axis=1).sum().backward()
        expected = np.zeros_like(data)
        expected[np.arange(3), data.argmax(axis=1)] = 1.0
        np.testing.assert_allclose(x.grad, expected)


class TestShapeOps:
    def test_reshape_grad(self):
        x = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3), requires_grad=True)
        (x.reshape(3, 2) * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 3), 2.0))

    def test_transpose_grad(self):
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 4)).astype(np.float32), requires_grad=True)
        y = x.transpose((2, 0, 1))
        assert y.shape == (4, 2, 3)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3, 4)))

    def test_swapaxes_grad(self):
        x = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        x.swapaxes(0, 1).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_getitem_slice_grad(self):
        x = Tensor(np.arange(10, dtype=np.float32), requires_grad=True)
        x[2:5].sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_getitem_fancy_index_accumulates(self):
        x = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
        idx = np.array([1, 1, 2])
        x[idx].sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 2.0, 1.0, 0.0])


class TestGraphMechanics:
    def test_backward_requires_scalar(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(GradientError):
            (x * 2).backward()

    def test_backward_with_seed_grad(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        (x * 3).backward(np.ones((2, 2)))
        np.testing.assert_allclose(x.grad, np.full((2, 2), 3.0))

    def test_backward_seed_shape_mismatch(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ShapeError):
            (x * 3).backward(np.ones(3))

    def test_backward_on_no_grad_tensor(self):
        x = Tensor(np.ones(2))
        with pytest.raises(GradientError):
            x.backward()

    def test_grad_accumulates_across_backwards(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2).sum().backward()
        (x * 2).sum().backward()
        np.testing.assert_allclose(x.grad, np.full(3, 4.0))

    def test_reused_node_accumulates(self):
        x = Tensor(np.full(3, 2.0), requires_grad=True)
        y = x * x  # x used twice
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.full(3, 4.0))

    def test_detach_cuts_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad
        z = Tensor(np.ones(3), requires_grad=True)
        (y * z).sum().backward()
        assert x.grad is None

    def test_no_grad_context(self):
        x = Tensor(np.ones(3), requires_grad=True)
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2
        assert is_grad_enabled()
        assert not y.requires_grad
        assert y._parents == ()

    def test_zero_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.ones(2), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(2))

    def test_float32_everywhere(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = (x * 2).exp()
        assert x.data.dtype == np.float32
        assert y.data.dtype == np.float32
        y.sum().backward()
        assert x.grad.dtype == np.float32

    def test_repr_mentions_shape_and_grad(self):
        assert "shape=(2,)" in repr(Tensor(np.zeros(2)))
        assert "requires_grad=True" in repr(Tensor(np.zeros(2), requires_grad=True))


class TestAbsClip:
    def test_abs_values_and_grad(self):
        x = Tensor(np.array([-2.0, 0.5, -0.1], dtype=np.float32), requires_grad=True)
        x.abs().sum().backward()
        np.testing.assert_allclose(x.grad, [-1.0, 1.0, -1.0])

    def test_clip_values(self):
        x = Tensor(np.array([-2.0, 0.5, 3.0], dtype=np.float32))
        np.testing.assert_allclose(x.clip(-1.0, 1.0).numpy(), [-1.0, 0.5, 1.0])

    def test_clip_grad_masked_outside(self):
        x = Tensor(np.array([-2.0, 0.5, 3.0], dtype=np.float32), requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_abs_numeric_gradcheck(self):
        check_unary(lambda t: t.abs(), seed=11)
