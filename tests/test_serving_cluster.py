"""Multi-replica serving cluster: supervisor, router, heal, deploy.

Thread-transport tests run the cluster synchronously (``pump`` /
``drain`` / explicit ``check_health``) so every scheduling decision is
deterministic; one fork-transport smoke proves the subprocess path
end-to-end.  Chaos scenarios (SIGKILL mid-batch, faults mid-deploy)
live in ``test_serving_cluster_chaos.py``.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    ClusterError,
    QueueFullError,
    ReplicaCrashedError,
    ServingError,
)
from repro.obs import Observability
from repro.serving import (
    ClusterConfig,
    ClusterSupervisor,
    ReplicaApp,
    ScoreRequest,
    ScoreResult,
)


def stub_app(replica_id: int, threshold: float = 0.5, version_box: dict | None = None) -> ReplicaApp:
    """A deterministic replica: score = (len(text) % 10) / 10 + 0.05.

    ``version_box`` (shared per factory call via closure) makes weight
    swaps observable: ``swap_weights`` bumps the version and stores the
    state so tests can assert what each replica is running.
    """
    box = version_box if version_box is not None else {"version": 1, "state": None}

    def batch_fn(requests: list[ScoreRequest]) -> list[ScoreResult]:
        results = []
        for r in requests:
            score = (len(r.behavior_text) % 10) / 10.0 + 0.05
            results.append(
                ScoreResult(
                    user_id=r.user_id,
                    score=score,
                    approved=score < threshold,
                    threshold=threshold,
                    cached=False,
                )
            )
        return results

    def swap(state):
        box["version"] += 1
        box["state"] = dict(state)

    return ReplicaApp(
        batch_fn=batch_fn,
        swap_weights=swap,
        weight_version=lambda: box["version"],
    )


def make_cluster(obs=None, **config_kwargs) -> ClusterSupervisor:
    defaults = dict(replicas=2, max_batch_size=4, queue_capacity=8)
    defaults.update(config_kwargs)
    return ClusterSupervisor(stub_app, ClusterConfig(**defaults), obs=obs or Observability.create())


def requests(n: int, tenant: str | None = None) -> list[ScoreRequest]:
    return [
        ScoreRequest(tenant or f"user-{i}", f"balance={'x' * (i % 13)}")
        for i in range(n)
    ]


class TestConfig:
    def test_validation(self):
        with pytest.raises(ClusterError):
            ClusterConfig(replicas=0)
        with pytest.raises(ClusterError):
            ClusterConfig(transport="carrier-pigeon")
        with pytest.raises(ClusterError):
            ClusterConfig(tenant_quota=0)
        with pytest.raises(ClusterError):
            ClusterConfig(max_redispatch=-1)
        with pytest.raises(ClusterError):
            ClusterConfig(health_interval_s=0)
        with pytest.raises(ServingError):
            ClusterConfig(max_batch_size=0)  # engine knobs validated eagerly

    def test_cluster_errors_are_serving_errors(self):
        assert issubclass(ClusterError, ServingError)
        assert issubclass(ReplicaCrashedError, ClusterError)


class TestRoutingAndResults:
    def test_serve_scores_everything_with_replica_tags(self):
        cluster = make_cluster()
        reqs = requests(10)
        results = cluster.serve(reqs)
        assert [r.user_id for r in results] == [r.user_id for r in reqs]
        assert all(r.replica in (0, 1) for r in results)
        # Least-loaded routing spreads a burst across both replicas.
        assert {r.replica for r in results} == {0, 1}
        cluster.stop()

    def test_scores_are_replica_independent(self):
        cluster = make_cluster()
        reqs = requests(6)
        results = cluster.serve(reqs)
        for req, res in zip(reqs, results):
            assert res.score == pytest.approx((len(req.behavior_text) % 10) / 10.0 + 0.05)
        cluster.stop()

    def test_least_loaded_prefers_empty_replica(self):
        cluster = make_cluster(replicas=3)
        cluster.launch()
        pendings = [cluster.submit(r) for r in requests(3)]
        # Three submissions with empty queues land on three distinct replicas.
        assert sorted(r.outstanding for r in cluster.replicas) == [1, 1, 1]
        cluster.drain()
        assert {p.result(timeout=0).replica for p in pendings} == {0, 1, 2}
        cluster.stop()

    def test_empty_text_rejected_before_admission(self):
        cluster = make_cluster()
        with pytest.raises(ServingError):
            cluster.submit(ScoreRequest("u", "   "))
        assert cluster.stats.submitted == 0
        cluster.stop()

    def test_context_manager_threaded(self):
        with make_cluster() as cluster:
            results = cluster.serve(requests(8))
            assert len(results) == 8
        assert cluster.healthy_count() == 0  # stopped


class TestBackpressure:
    def test_queue_full_everywhere_raises(self):
        cluster = make_cluster(replicas=2, queue_capacity=2)
        cluster.launch()
        for r in requests(4):
            cluster.submit(r)
        with pytest.raises(QueueFullError):
            cluster.submit(ScoreRequest("overflow", "text"))
        assert cluster.stats.rejected == 1
        cluster.drain()
        cluster.stop()

    def test_full_replica_overflows_to_other(self):
        cluster = make_cluster(replicas=2, queue_capacity=3)
        cluster.launch()
        for r in requests(6):
            cluster.submit(r)
        assert [r.engine.queue_depth for r in cluster.replicas] == [3, 3]
        cluster.drain()
        cluster.stop()

    def test_tenant_quota_admission(self):
        cluster = make_cluster(tenant_quota=2)
        cluster.launch()
        cluster.submit(ScoreRequest("acme", "a"))
        cluster.submit(ScoreRequest("acme", "bb"))
        with pytest.raises(QueueFullError):
            cluster.submit(ScoreRequest("acme", "ccc"))
        assert cluster.stats.quota_rejected == 1
        # Other tenants are unaffected.
        cluster.submit(ScoreRequest("globex", "d"))
        cluster.drain()
        # Quota frees as requests resolve.
        cluster.submit(ScoreRequest("acme", "eee"))
        cluster.drain()
        cluster.stop()


class TestCrashRecovery:
    def test_killed_replica_work_redispatched(self):
        cluster = make_cluster(replicas=2)
        cluster.launch()
        pendings = [cluster.submit(r) for r in requests(8)]
        cluster.replicas[0].transport.kill()
        cluster.drain()
        results = [p.result(timeout=0) for p in pendings]
        assert len(results) == 8
        # Everything the dead replica held was rescued by the survivor.
        assert all(r.replica == 1 for r in results)
        assert cluster.stats.completed == 8
        assert cluster.stats.redispatched > 0
        assert cluster.replica_states()[0] == "dead"
        cluster.stop()

    def test_health_check_restarts_dead_replica(self):
        cluster = make_cluster(replicas=2)
        cluster.launch()
        cluster.replicas[0].transport.kill()
        cluster.serve(requests(4))  # crash detected during scoring
        assert cluster.replica_states()[0] == "dead"
        states = cluster.check_health()
        assert states[0] == "healthy"
        assert cluster.stats.restarts == 1
        # The restarted replica serves again.
        results = cluster.serve(requests(6))
        assert {r.replica for r in results} == {0, 1}
        cluster.stop()

    def test_restart_cap_abandons_replica(self):
        cluster = make_cluster(replicas=2, max_restarts=1)
        cluster.launch()
        replica = cluster.replicas[0]
        for _ in range(3):
            replica.transport.kill()
            cluster.serve(requests(2))
            cluster.check_health()
        assert replica.restarts == 1
        assert cluster.replica_states()[0] == "dead"
        # The cluster keeps serving on the survivor.
        assert len(cluster.serve(requests(4))) == 4
        cluster.stop()

    def test_total_loss_surfaces_crash_error(self):
        cluster = make_cluster(replicas=1, max_redispatch=1, max_restarts=0)
        cluster.launch()
        pending = cluster.submit(ScoreRequest("u", "text"))
        cluster.replicas[0].transport.kill()
        cluster.drain()
        assert isinstance(pending.error, (ReplicaCrashedError, QueueFullError))
        assert cluster.stats.failed == 1
        cluster.stop()

    def test_breaker_opens_on_repeated_crash(self):
        cluster = make_cluster(replicas=2, breaker_min_calls=1, breaker_failure_threshold=0.5)
        cluster.launch()
        replica = cluster.replicas[0]
        replica.transport.kill()
        cluster.serve(requests(4))
        assert replica.breaker.state == "open"
        # Restart force-closes the breaker: the replacement process is new.
        cluster.check_health()
        assert replica.breaker.state == "closed"
        cluster.stop()


class TestExactlyOnce:
    def test_every_pending_resolves_exactly_once_under_crash(self):
        cluster = make_cluster(replicas=2)
        cluster.launch()
        seen: list[str] = []
        pendings = [cluster.submit(r) for r in requests(8)]
        for p in pendings:
            p.add_done_callback(lambda pr: seen.append(pr.request.user_id))
        cluster.replicas[1].transport.kill()
        cluster.drain()
        assert sorted(seen) == sorted(f"user-{i}" for i in range(8))
        assert cluster.stats.resolved == 8
        cluster.stop()


class TestRollingDeploy:
    def test_deploy_swaps_every_replica(self):
        cluster = make_cluster(replicas=3)
        cluster.launch()
        assert set(cluster.weight_versions().values()) == {1}
        swapped = cluster.deploy({"w": 2.0})
        assert swapped == 3
        assert set(cluster.weight_versions().values()) == {2}
        assert cluster.stats.swaps == 3
        cluster.stop()

    def test_deploy_waits_for_drain(self):
        cluster = make_cluster(replicas=2)
        cluster.launch()
        pendings = [cluster.submit(r) for r in requests(6)]
        cluster.deploy({"w": 1.0})  # drains queued work before each swap
        assert all(p.done for p in pendings)
        assert all(p.error is None for p in pendings)
        cluster.stop()

    def test_restart_applies_staged_weights(self):
        cluster = make_cluster(replicas=2)
        cluster.launch()
        cluster.deploy({"w": 7.0})
        cluster.replicas[0].transport.kill()
        cluster.serve(requests(2))
        cluster.check_health()  # restart rebuilds from factory (version 1)...
        versions = cluster.weight_versions()
        assert versions[0] == versions[1] == 2  # ...then re-applies the staged state
        cluster.stop()

    def test_failed_swap_returns_replica_to_service(self):
        def fragile_app(replica_id: int) -> ReplicaApp:
            app = stub_app(replica_id)

            def bad_swap(state):
                raise ClusterError("state dict does not fit")

            return ReplicaApp(
                batch_fn=app.batch_fn,
                swap_weights=bad_swap,
                weight_version=app.weight_version,
            )

        cluster = ClusterSupervisor(fragile_app, ClusterConfig(replicas=2))
        cluster.launch()
        with pytest.raises(ClusterError):
            cluster.deploy({"w": 1.0})
        assert cluster.replica_states()[0] == "healthy"
        assert len(cluster.serve(requests(4))) == 4
        cluster.stop()


class TestObservability:
    def test_counters_and_gauges(self):
        obs = Observability.create()
        cluster = make_cluster(obs=obs)
        cluster.launch()
        cluster.serve(requests(5))
        cluster.replicas[0].transport.kill()
        cluster.serve(requests(2))
        cluster.check_health()
        counters = obs.metrics.snapshot()["counters"]
        assert counters["cluster.submitted"] == 7
        assert counters["cluster.completed"] == 7
        assert counters["cluster.replica_restarted"] == 1
        assert counters["cluster.health_checks"] == 1
        gauges = obs.metrics.snapshot()["gauges"]
        assert gauges["cluster.replicas_healthy"] == 2
        assert gauges["cluster.outstanding"] == 0
        cluster.stop()

    def test_lifecycle_events_emitted(self, tmp_path):
        obs = Observability.create(events_path=tmp_path / "run.jsonl")
        cluster = make_cluster(obs=obs)
        cluster.launch()
        cluster.replicas[0].transport.kill()
        cluster.serve(requests(2))
        cluster.check_health()
        cluster.stop()
        kinds = [e["kind"] for e in obs.events.events()]
        assert "cluster.replica" in kinds
        assert "cluster.replica_restarted" in kinds


class TestThreadedMode:
    def test_start_stop_serves_with_workers(self):
        cluster = make_cluster()
        cluster.start()
        try:
            pendings = [cluster.submit(r) for r in requests(8)]
            results = [p.result(timeout=5.0) for p in pendings]
            assert len(results) == 8
            assert all(0.0 <= r.score <= 1.0 for r in results)
        finally:
            cluster.stop()

    def test_threaded_deploy_drains_then_swaps(self):
        cluster = make_cluster()
        cluster.start()
        try:
            pendings = [cluster.submit(r) for r in requests(6)]
            swapped = cluster.deploy({"w": 3.0}, drain_timeout_s=5.0)
            assert swapped == 2
            assert all(p.result(timeout=5.0) for p in pendings)
            assert set(cluster.weight_versions().values()) == {2}
        finally:
            cluster.stop()


class TestForkTransport:
    def test_fork_smoke_scores_and_deploys(self):
        cluster = ClusterSupervisor(
            stub_app,
            ClusterConfig(replicas=2, transport="fork", rpc_timeout_s=30.0),
        )
        cluster.start()
        try:
            pendings = [cluster.submit(r) for r in requests(6)]
            results = [p.result(timeout=30.0) for p in pendings]
            assert [r.user_id for r in results] == [f"user-{i}" for i in range(6)]
            assert all(r.replica in (0, 1) for r in results)
            pids = {r.transport.pid for r in cluster.replicas}
            assert len(pids) == 2  # genuinely separate processes
            assert cluster.deploy({"w": 1.5}, drain_timeout_s=10.0) == 2
            assert set(cluster.weight_versions().values()) == {2}
        finally:
            cluster.stop()
