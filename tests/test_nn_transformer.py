"""MistralTiny model tests: config validation, forward, loss masking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.nn import MistralTiny, ModelConfig


class TestModelConfig:
    def test_defaults_valid(self):
        ModelConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"vocab_size": 0},
            {"d_model": 30, "n_heads": 4},
            {"n_heads": 4, "n_kv_heads": 3},
            {"d_model": 36, "n_heads": 6},  # head dim 6 even — valid; see below
        ],
    )
    def test_invalid_configs(self, kwargs):
        if kwargs == {"d_model": 36, "n_heads": 6}:
            ModelConfig(**kwargs)  # even head_dim: fine
            return
        with pytest.raises(ConfigError):
            ModelConfig(**kwargs)

    def test_odd_head_dim_rejected(self):
        with pytest.raises(ConfigError):
            ModelConfig(d_model=12, n_heads=4, n_kv_heads=4)  # head_dim 3

    def test_roundtrip_dict(self):
        config = ModelConfig(vocab_size=100, d_model=32, n_heads=4, n_kv_heads=2, d_ff=64)
        assert ModelConfig.from_dict(config.to_dict()) == config


class TestForward:
    def test_logit_shape(self, tiny_model, tiny_config, token_batch):
        logits = tiny_model(token_batch)
        assert logits.shape == (2, 12, tiny_config.vocab_size)

    def test_1d_input_promoted(self, tiny_model, tiny_config):
        logits = tiny_model(np.arange(5))
        assert logits.shape == (1, 5, tiny_config.vocab_size)

    def test_3d_input_rejected(self, tiny_model):
        with pytest.raises(ShapeError):
            tiny_model(np.zeros((1, 2, 3), dtype=np.int64))

    def test_too_long_sequence_rejected(self, tiny_model, tiny_config):
        with pytest.raises(ShapeError):
            tiny_model(np.zeros((1, tiny_config.max_seq_len + 1), dtype=np.int64))

    def test_deterministic(self, tiny_config, token_batch):
        a = MistralTiny(tiny_config, rng=5)
        b = MistralTiny(tiny_config, rng=5)
        np.testing.assert_allclose(a(token_batch).numpy(), b(token_batch).numpy())

    def test_untied_head(self, tiny_config, token_batch):
        from dataclasses import replace

        model = MistralTiny(replace(tiny_config, tie_embeddings=False), rng=0)
        assert model.lm_head is not None
        logits = model(token_batch)
        assert logits.shape == (2, 12, tiny_config.vocab_size)

    def test_tied_head_shares_embedding(self, tiny_model):
        assert tiny_model.lm_head is None
        names = {name for name, _ in tiny_model.named_parameters()}
        assert not any("lm_head" in n for n in names)


class TestLoss:
    def test_initial_loss_near_uniform(self, tiny_model, tiny_config, token_batch):
        loss = tiny_model.loss(token_batch).item()
        assert abs(loss - np.log(tiny_config.vocab_size)) < 1.0

    def test_label_shift(self, tiny_model):
        """Loss must supervise next-token prediction, not identity."""
        # Sequence where every next token is 7: model can't know from ids alone,
        # but the loss must be computed against shifted labels — verify the
        # mechanism by masking all but one position and checking which logit
        # receives gradient.
        ids = np.array([[3, 5, 9, 2]])
        labels = np.array([[-100, -100, 7, -100]])
        # Supervised pair: logits at position 1 predict label at position 2.
        logits = tiny_model(ids)
        loss = tiny_model.loss(ids, labels)
        assert np.isfinite(loss.item())

    def test_all_masked_raises(self, tiny_model):
        ids = np.array([[1, 2, 3]])
        labels = np.full((1, 3), -100)
        with pytest.raises(ShapeError):
            tiny_model.loss(ids, labels)

    def test_label_shape_mismatch(self, tiny_model):
        with pytest.raises(ShapeError):
            tiny_model.loss(np.zeros((1, 4), dtype=np.int64), np.zeros((1, 5), dtype=np.int64))

    def test_masked_positions_do_not_affect_loss(self, tiny_model):
        ids = np.array([[3, 5, 9, 2, 8]])
        labels = np.array([[-100, 5, 9, -100, -100]])
        loss1 = tiny_model.loss(ids, labels).item()
        # Change a masked label position's token id downstream of supervision.
        ids2 = ids.copy()
        ids2[0, 4] = 60
        loss2 = tiny_model.loss(ids2, labels).item()
        assert loss1 == pytest.approx(loss2, rel=1e-5)

    def test_gradients_reach_all_trainable_params(self, tiny_model, token_batch):
        tiny_model.loss(token_batch).backward()
        missing = [n for n, p in tiny_model.named_parameters() if p.grad is None]
        assert missing == []
