"""Optimizer, schedule and clipping tests."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn.module import Parameter
from repro.optim import (
    SGD,
    AdamW,
    ConstantLR,
    CosineDecayLR,
    LinearDecayLR,
    clip_grad_norm,
    global_grad_norm,
)


def quadratic_params(n=4, seed=0):
    rng = np.random.default_rng(seed)
    return [Parameter(rng.normal(0, 2, size=(n,)).astype(np.float32))]


def quadratic_step(params):
    """Set grads for f(w) = 0.5 * ||w||^2 and return the loss."""
    loss = 0.0
    for p in params:
        p.grad = p.data.copy()
        loss += 0.5 * float((p.data**2).sum())
    return loss


class TestOptimizers:
    def test_sgd_converges_on_quadratic(self):
        params = quadratic_params()
        opt = SGD(params, lr=0.1)
        first = quadratic_step(params)
        for _ in range(100):
            quadratic_step(params)
            opt.step()
        assert quadratic_step(params) < 1e-3 * first

    def test_sgd_momentum_converges(self):
        params = quadratic_params()
        opt = SGD(params, lr=0.05, momentum=0.9)
        for _ in range(100):
            quadratic_step(params)
            opt.step()
        assert quadratic_step(params) < 1e-3

    def test_adamw_converges_on_quadratic(self):
        params = quadratic_params()
        opt = AdamW(params, lr=0.1)
        for _ in range(200):
            quadratic_step(params)
            opt.step()
        assert quadratic_step(params) < 1e-3

    def test_adamw_weight_decay_shrinks_weights(self):
        p = Parameter(np.full(3, 10.0, dtype=np.float32))
        opt = AdamW([p], lr=0.01, weight_decay=0.5)
        p.grad = np.zeros(3, dtype=np.float32)
        opt.step()
        assert (p.data < 10.0).all()

    def test_no_weight_decay_leaves_zero_grad_params(self):
        p = Parameter(np.full(3, 10.0, dtype=np.float32))
        opt = AdamW([p], lr=0.01)
        p.grad = np.zeros(3, dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(p.data, np.full(3, 10.0))

    def test_frozen_params_excluded(self):
        frozen = Parameter(np.ones(2, dtype=np.float32), requires_grad=False)
        live = Parameter(np.ones(2, dtype=np.float32))
        opt = SGD([frozen, live], lr=0.1)
        assert opt.params == [live]

    def test_no_trainable_params_raises(self):
        frozen = Parameter(np.ones(2, dtype=np.float32), requires_grad=False)
        with pytest.raises(ConfigError):
            SGD([frozen], lr=0.1)

    def test_invalid_lr_raises(self):
        with pytest.raises(ConfigError):
            SGD(quadratic_params(), lr=0.0)

    def test_none_grad_skipped(self):
        p = Parameter(np.ones(2, dtype=np.float32))
        opt = AdamW([p], lr=0.1)
        opt.step()  # no grad set; must not crash or move weights
        np.testing.assert_allclose(p.data, np.ones(2))

    def test_zero_grad(self):
        params = quadratic_params()
        opt = SGD(params, lr=0.1)
        quadratic_step(params)
        opt.zero_grad()
        assert all(p.grad is None for p in params)


class TestSchedules:
    def test_constant(self):
        sched = ConstantLR(0.01)
        assert sched.lr_at(0) == sched.lr_at(1000) == 0.01

    def test_cosine_decays_to_min(self):
        sched = CosineDecayLR(1.0, total_steps=100, min_lr=0.1)
        assert sched.lr_at(0) == pytest.approx(1.0)
        assert sched.lr_at(50) == pytest.approx(0.55, abs=1e-6)
        assert sched.lr_at(100) == pytest.approx(0.1)
        assert sched.lr_at(500) == pytest.approx(0.1)  # clamps after total

    def test_cosine_warmup_ramps(self):
        sched = CosineDecayLR(1.0, total_steps=100, warmup_steps=10)
        assert sched.lr_at(0) == pytest.approx(0.1)
        assert sched.lr_at(9) == pytest.approx(1.0)
        assert sched.lr_at(10) <= 1.0

    def test_cosine_monotone_after_warmup(self):
        sched = CosineDecayLR(1.0, total_steps=50, warmup_steps=5)
        values = [sched.lr_at(s) for s in range(5, 51)]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_lr": 0.0, "total_steps": 10},
            {"base_lr": 1.0, "total_steps": 0},
            {"base_lr": 1.0, "total_steps": 10, "warmup_steps": 10},
            {"base_lr": 1.0, "total_steps": 10, "min_lr": 2.0},
        ],
    )
    def test_cosine_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            CosineDecayLR(**kwargs)

    def test_linear_decay(self):
        sched = LinearDecayLR(1.0, total_steps=10)
        assert sched.lr_at(0) == pytest.approx(1.0)
        assert sched.lr_at(5) == pytest.approx(0.5)
        assert sched.lr_at(10) == pytest.approx(0.0)
        assert sched.lr_at(20) == pytest.approx(0.0)

    def test_callable_interface(self):
        sched = ConstantLR(0.5)
        assert sched(3) == 0.5


class TestClipping:
    def test_norm_computation(self):
        p = Parameter(np.zeros(2, dtype=np.float32))
        p.grad = np.array([3.0, 4.0], dtype=np.float32)
        assert global_grad_norm([p]) == pytest.approx(5.0)

    def test_clip_scales_down(self):
        p = Parameter(np.zeros(2, dtype=np.float32))
        p.grad = np.array([3.0, 4.0], dtype=np.float32)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert global_grad_norm([p]) == pytest.approx(1.0, rel=1e-5)

    def test_clip_noop_when_under(self):
        p = Parameter(np.zeros(2, dtype=np.float32))
        p.grad = np.array([0.3, 0.4], dtype=np.float32)
        clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])

    def test_missing_grads_count_zero(self):
        p1 = Parameter(np.zeros(2, dtype=np.float32))
        p2 = Parameter(np.zeros(2, dtype=np.float32))
        p2.grad = np.array([0.0, 2.0], dtype=np.float32)
        assert global_grad_norm([p1, p2]) == pytest.approx(2.0)


class TestLion:
    def test_converges_on_quadratic(self):
        from repro.optim import Lion

        params = quadratic_params()
        opt = Lion(params, lr=0.05)
        for _ in range(200):
            quadratic_step(params)
            opt.step()
        assert quadratic_step(params) < 0.05

    def test_update_is_sign_scaled(self):
        from repro.optim import Lion

        p = Parameter(np.zeros(3, dtype=np.float32))
        opt = Lion([p], lr=0.1)
        p.grad = np.array([5.0, -0.01, 0.0], dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(p.data, [-0.1, 0.1, 0.0], atol=1e-7)

    def test_weight_decay(self):
        from repro.optim import Lion

        p = Parameter(np.full(2, 4.0, dtype=np.float32))
        opt = Lion([p], lr=0.01, weight_decay=0.5)
        p.grad = np.zeros(2, dtype=np.float32)
        opt.step()
        assert (p.data < 4.0).all()

    def test_skips_missing_grads(self):
        from repro.optim import Lion

        p = Parameter(np.ones(2, dtype=np.float32))
        Lion([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, np.ones(2))
