"""Resilience layer: retry, circuit breaker, fault injection, chaos.

This module is the chaos suite: it is run standalone by the CI
``chaos-smoke`` job, so it must stay self-contained (its own fixtures,
no reliance on other test modules' side effects).
"""

from __future__ import annotations

import multiprocessing
import time

import numpy as np
import pytest

from repro.errors import (
    CircuitOpenError,
    InjectedFault,
    ResilienceError,
    ServingError,
    ServingTimeout,
)
from repro.nn import MistralTiny, ModelConfig
from repro.obs import Observability
from repro.optim import SGD, AdamW
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    FaultInjector,
    RetryPolicy,
    fault_point,
    installed,
)
from repro.serving import EngineConfig, MicroBatchEngine, ScoreRequest, ScoreResult
from repro.training import CheckpointManager, Trainer, TrainingConfig

TINY = ModelConfig(
    vocab_size=64,
    d_model=32,
    n_layers=2,
    n_heads=4,
    n_kv_heads=2,
    d_ff=64,
    max_seq_len=32,
    sliding_window=16,
)


class Clock:
    """Hand-advanced clock usable for engines, policies and breakers."""

    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class SleepRecorder:
    """A fake ``sleep`` that records delays (and can advance a clock)."""

    def __init__(self, clock: Clock | None = None):
        self.calls: list[float] = []
        self.clock = clock

    def __call__(self, delay: float) -> None:
        self.calls.append(delay)
        if self.clock is not None:
            self.clock.advance(delay)


def random_examples(n=16, seed=0):
    rng = np.random.default_rng(seed)
    return [(list(rng.integers(5, 60, size=8)),) * 2 for _ in range(n)]


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------


class TestRetryPolicy:
    def test_first_try_success_never_sleeps(self):
        sleep = SleepRecorder()
        policy = RetryPolicy(sleep=sleep, obs=Observability.disabled())
        assert policy.call(lambda: 42) == 42
        assert sleep.calls == []

    def test_transient_fault_retried_to_success(self):
        sleep = SleepRecorder()
        policy = RetryPolicy(max_attempts=3, sleep=sleep, obs=Observability.disabled())
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise RuntimeError("transient")
            return "ok"

        assert policy.call(flaky) == "ok"
        assert len(attempts) == 3
        assert len(sleep.calls) == 2

    def test_gives_up_and_reraises_last_error(self):
        policy = RetryPolicy(
            max_attempts=2, sleep=SleepRecorder(), obs=Observability.disabled()
        )
        with pytest.raises(ValueError, match="always"):
            policy.call(lambda: (_ for _ in ()).throw(ValueError("always")))

    def test_retry_on_filters_exception_types(self):
        policy = RetryPolicy(
            max_attempts=3, sleep=SleepRecorder(), obs=Observability.disabled()
        )
        calls = []

        def wrong_type():
            calls.append(1)
            raise KeyError("not retriable")

        with pytest.raises(KeyError):
            policy.call(wrong_type, retry_on=(ValueError,))
        assert len(calls) == 1  # no retries for non-matching errors

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay_s=0.1,
            multiplier=2.0,
            max_delay_s=0.3,
            jitter=0.0,
            obs=Observability.disabled(),
        )
        assert [policy.delay_for(i) for i in range(4)] == [0.1, 0.2, 0.3, 0.3]

    def test_jitter_is_deterministic_per_seed(self):
        a = RetryPolicy(seed=7, obs=Observability.disabled())
        b = RetryPolicy(seed=7, obs=Observability.disabled())
        c = RetryPolicy(seed=8, obs=Observability.disabled())
        seq_a = [a.delay_for(i) for i in range(5)]
        seq_b = [b.delay_for(i) for i in range(5)]
        seq_c = [c.delay_for(i) for i in range(5)]
        assert seq_a == seq_b
        assert seq_a != seq_c

    def test_reset_rewinds_jitter(self):
        policy = RetryPolicy(seed=3, obs=Observability.disabled())
        first = [policy.delay_for(i) for i in range(3)]
        policy.reset()
        assert [policy.delay_for(i) for i in range(3)] == first

    def test_budget_prevents_overrunning_deadline(self):
        clock = Clock()
        sleep = SleepRecorder(clock)
        policy = RetryPolicy(
            max_attempts=5,
            base_delay_s=1.0,
            jitter=0.0,
            sleep=sleep,
            clock=clock,
            obs=Observability.disabled(),
        )
        calls = []

        def failing():
            calls.append(1)
            raise RuntimeError("down")

        with pytest.raises(RuntimeError):
            policy.call(failing, budget_s=0.5)  # first backoff (1s) would overrun
        assert len(calls) == 1
        assert sleep.calls == []

    def test_counters(self):
        obs = Observability.create()
        policy = RetryPolicy(max_attempts=3, sleep=SleepRecorder(), obs=obs)
        with pytest.raises(RuntimeError):
            policy.call(lambda: (_ for _ in ()).throw(RuntimeError("x")))
        counters = obs.metrics.snapshot()["counters"]
        assert counters["resilience.retry.attempts"] == 3
        assert counters["resilience.retry.retries"] == 2
        assert counters["resilience.retry.giveups"] == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay_s": -1},
            {"multiplier": 0.5},
            {"jitter": 1.5},
            {"base_delay_s": 1.0, "max_delay_s": 0.5},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ResilienceError):
            RetryPolicy(obs=Observability.disabled(), **kwargs)


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------


def make_breaker(clock, obs=None, **kwargs):
    defaults = dict(
        failure_threshold=0.5,
        window=8,
        min_calls=4,
        reset_timeout_s=10.0,
        clock=clock,
        obs=obs or Observability.disabled(),
    )
    defaults.update(kwargs)
    return CircuitBreaker(**defaults)


class TestCircuitBreaker:
    def test_stays_closed_below_min_calls(self):
        breaker = make_breaker(Clock())
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_opens_at_failure_rate(self):
        breaker = make_breaker(Clock())
        breaker.record_success()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()  # 2/4 failures >= 0.5
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_half_open_after_timeout_admits_one_probe(self):
        clock = Clock()
        breaker = make_breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # only one probe in flight

    def test_probe_success_closes_and_clears_window(self):
        clock = Clock()
        breaker = make_breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(11)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.failure_rate == 0.0

    def test_probe_failure_reopens_and_restarts_timeout(self):
        clock = Clock()
        breaker = make_breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(11)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(9)
        assert breaker.state == OPEN  # timeout restarted at reopen
        clock.advance(2)
        assert breaker.state == HALF_OPEN

    def test_call_wrapper_raises_circuit_open(self):
        clock = Clock()
        breaker = make_breaker(clock, min_calls=2, window=4)
        for _ in range(2):
            with pytest.raises(RuntimeError):
                breaker.call(lambda: (_ for _ in ()).throw(RuntimeError("down")))
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "never runs")

    def test_transition_counters(self):
        clock = Clock()
        obs = Observability.create()
        breaker = make_breaker(clock, obs=obs)
        for _ in range(4):
            breaker.record_failure()
        assert not breaker.allow()
        clock.advance(11)
        assert breaker.allow()
        breaker.record_success()
        counters = obs.metrics.snapshot()["counters"]
        assert counters["resilience.breaker.open"] == 1
        assert counters["resilience.breaker.half_open"] == 1
        assert counters["resilience.breaker.closed"] == 1
        assert counters["resilience.breaker.rejected"] >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0.0},
            {"failure_threshold": 1.5},
            {"window": 0},
            {"min_calls": 0},
            {"min_calls": 20, "window": 10},
            {"reset_timeout_s": -1},
            {"half_open_max_calls": 0},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ResilienceError):
            make_breaker(Clock(), **kwargs)


# ----------------------------------------------------------------------
# FaultInjector
# ----------------------------------------------------------------------


class TestFaultInjector:
    def test_uninstalled_fault_point_is_noop(self):
        assert installed() is None
        fault_point("anything.at.all", step=1)  # must not raise

    def test_fail_nth(self):
        injector = FaultInjector().fail_nth("p", 2)
        with injector.active():
            fault_point("p")
            with pytest.raises(InjectedFault):
                fault_point("p")
            fault_point("p")  # 3rd hit passes
        assert injector.hits["p"] == 3
        assert injector.injected["p"] == 1

    def test_fail_times_models_transient_fault(self):
        injector = FaultInjector().fail_times("p", 2)
        with injector.active():
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    fault_point("p")
            fault_point("p")  # healed

    def test_fail_when_matches_context(self):
        injector = FaultInjector().fail_when("ckpt", step=4)
        with injector.active():
            fault_point("ckpt", step=2)
            with pytest.raises(InjectedFault):
                fault_point("ckpt", step=4)

    def test_fail_rate_deterministic_per_seed(self):
        def pattern(seed):
            injector = FaultInjector(seed=seed).fail_rate("p", 0.5)
            fired = []
            with injector.active():
                for _ in range(32):
                    try:
                        fault_point("p")
                        fired.append(False)
                    except InjectedFault:
                        fired.append(True)
            return fired

        assert pattern(1) == pattern(1)
        assert pattern(1) != pattern(2)

    def test_custom_exception_factory(self):
        injector = FaultInjector().fail_nth("p", 1, exc=lambda msg: OSError(msg))
        with injector.active():
            with pytest.raises(OSError):
                fault_point("p")

    def test_active_restores_previous_injector(self):
        outer = FaultInjector().install()
        try:
            inner = FaultInjector()
            with inner.active():
                assert installed() is inner
            assert installed() is outer
        finally:
            outer.uninstall()
        assert installed() is None

    def test_invalid_schedules(self):
        injector = FaultInjector()
        with pytest.raises(ResilienceError):
            injector.fail_nth("p", 0)
        with pytest.raises(ResilienceError):
            injector.fail_times("p", 0)
        with pytest.raises(ResilienceError):
            injector.fail_rate("p", 1.5)
        with pytest.raises(ResilienceError):
            injector.fail_when("p")


# ----------------------------------------------------------------------
# Serving engine integration
# ----------------------------------------------------------------------


class ScriptedScorer:
    """Fails the first ``fail_first`` batches, then serves cleanly."""

    def __init__(self, fail_first: int = 0):
        self.fail_first = fail_first
        self.calls = 0

    def __call__(self, requests):
        self.calls += 1
        if self.calls <= self.fail_first:
            raise RuntimeError("scorer down")
        return [
            ScoreResult(r.user_id, 0.2, True, 0.5, cached=False) for r in requests
        ]


def fallback_fn(requests):
    return [
        ScoreResult(r.user_id, 0.9, False, 0.5, cached=False) for r in requests
    ]


class TestEngineRetry:
    def test_transient_fault_retried_within_deadline(self):
        clock = Clock()
        sleep = SleepRecorder(clock)
        obs = Observability.create()
        scorer = ScriptedScorer(fail_first=2)
        policy = RetryPolicy(
            max_attempts=3, base_delay_s=0.01, jitter=0.0,
            sleep=sleep, clock=clock, obs=obs,
        )
        engine = MicroBatchEngine(
            scorer, EngineConfig(max_batch_size=4),
            fallback_fn=fallback_fn, clock=clock, retry_policy=policy, obs=obs,
        )
        results = engine.serve(
            [ScoreRequest("u1", "pays on time", deadline=clock.now + 5.0)]
        )
        assert results[0].degraded is False  # primary answered after retries
        assert scorer.calls == 3
        counters = obs.metrics.snapshot()["counters"]
        assert counters["resilience.retry.attempts"] == 3
        assert counters["resilience.retry.retries"] == 2

    def test_no_budget_to_retry_falls_back(self):
        clock = Clock()
        sleep = SleepRecorder(clock)
        obs = Observability.disabled()
        scorer = ScriptedScorer(fail_first=10)
        policy = RetryPolicy(
            max_attempts=3, base_delay_s=1.0, jitter=0.0,
            sleep=sleep, clock=clock, obs=obs,
        )
        engine = MicroBatchEngine(
            scorer, EngineConfig(),
            fallback_fn=fallback_fn, clock=clock, retry_policy=policy, obs=obs,
        )
        # Deadline leaves no room for a 1s backoff: one attempt, then fallback.
        results = engine.serve(
            [ScoreRequest("u1", "pays on time", deadline=clock.now + 0.5)]
        )
        assert results[0].degraded is True
        assert scorer.calls == 1


class TestEngineBreaker:
    def make_engine(self, scorer, clock, obs, retry=None):
        breaker = CircuitBreaker(
            failure_threshold=0.5, window=4, min_calls=2,
            reset_timeout_s=10.0, clock=clock, obs=obs,
        )
        engine = MicroBatchEngine(
            scorer, EngineConfig(max_batch_size=2),
            fallback_fn=fallback_fn, clock=clock,
            retry_policy=retry, breaker=breaker, obs=obs,
        )
        return engine, breaker

    def test_trip_routes_to_fallback_without_primary_calls(self):
        clock = Clock()
        obs = Observability.create()
        scorer = ScriptedScorer(fail_first=1000)
        engine, breaker = self.make_engine(scorer, clock, obs)

        # Two failing batches trip the breaker; every request is still
        # answered (degraded), never an unhandled exception.
        for i in range(2):
            result = engine.serve([ScoreRequest(f"u{i}", "text")])[0]
            assert result.degraded is True
        assert breaker.state == OPEN
        calls_when_tripped = scorer.calls

        result = engine.serve([ScoreRequest("u9", "text")])[0]
        assert result.degraded is True
        assert scorer.calls == calls_when_tripped  # primary path bypassed
        counters = obs.metrics.snapshot()["counters"]
        assert counters["resilience.breaker.open"] >= 1
        assert counters["resilience.breaker.rejected"] >= 1

    def test_half_open_probe_recovers(self):
        clock = Clock()
        obs = Observability.create()
        scorer = ScriptedScorer(fail_first=2)
        engine, breaker = self.make_engine(scorer, clock, obs)

        for i in range(2):
            engine.serve([ScoreRequest(f"u{i}", "text")])
        assert breaker.state == OPEN

        # Scorer heals; once the reset timeout elapses the next batch is
        # the half-open probe and closes the breaker.
        clock.advance(11.0)
        result = engine.serve([ScoreRequest("u3", "text")])[0]
        assert result.degraded is False
        assert breaker.state == CLOSED
        counters = obs.metrics.snapshot()["counters"]
        assert counters["resilience.breaker.half_open"] == 1
        assert counters["resilience.breaker.closed"] == 1

    def test_report_shows_resilience_counters(self, tmp_path):
        """The `repro obs report` path surfaces resilience counters."""
        from repro.obs import read_events, render_registry, render_report

        clock = Clock()
        run_path = tmp_path / "run.jsonl"
        obs = Observability.create(events_path=run_path)
        scorer = ScriptedScorer(fail_first=1000)
        policy = RetryPolicy(
            max_attempts=2, sleep=SleepRecorder(clock), clock=clock, obs=obs
        )
        engine, _ = self.make_engine(scorer, clock, obs, retry=policy)
        for i in range(3):
            engine.serve([ScoreRequest(f"u{i}", "text")])
        registry = render_registry(obs.metrics)
        assert "resilience.breaker.open" in registry
        assert "resilience.retry.attempts" in registry
        obs.events.emit_metrics(obs.metrics)
        obs.events.close()
        report = render_report(read_events(run_path))
        assert "resilience.breaker.open" in report
        assert "resilience.retry.attempts" in report


class TestServingTimeout:
    def test_timeout_is_distinct_and_request_stays_queued(self):
        engine = MicroBatchEngine(
            ScriptedScorer(), EngineConfig(), obs=Observability.disabled()
        )
        pending = engine.submit(ScoreRequest("u1", "text"))
        with pytest.raises(ServingTimeout):
            pending.result(timeout=0)
        assert isinstance(ServingTimeout("x"), ServingError)
        assert engine.queue_depth == 1  # still in flight, not failed
        engine.pump()
        assert pending.result(timeout=0).user_id == "u1"


class TestIdleWorker:
    def test_idle_engine_does_no_periodic_wakeups(self):
        engine = MicroBatchEngine(
            ScriptedScorer(), EngineConfig(max_wait_s=0.005),
            obs=Observability.disabled(),
        )
        engine.start()
        time.sleep(0.25)  # old loop would have woken ~5 times by now
        assert engine.idle_wakeups == 0
        engine.stop()
        assert engine.idle_wakeups == 0

    def test_threaded_submit_still_served(self):
        engine = MicroBatchEngine(
            ScriptedScorer(), EngineConfig(max_batch_size=4, max_wait_s=0.01),
            obs=Observability.disabled(),
        )
        with engine:
            pending = [
                engine.submit(ScoreRequest(f"u{i}", "text")) for i in range(8)
            ]
            results = [p.result(timeout=5.0) for p in pending]
        assert [r.user_id for r in results] == [f"u{i}" for i in range(8)]
        assert engine.idle_wakeups == 0


# ----------------------------------------------------------------------
# Chaos: kill-and-resume training parity
# ----------------------------------------------------------------------


def run_training(tmp_path, name, config, crash_after_step=None, opt_factory=None):
    """One training run; returns (model, trainer, manager)."""
    opt_factory = opt_factory or (lambda params: AdamW(params, lr=3e-3))
    model = MistralTiny(TINY, rng=0)
    manager = CheckpointManager(tmp_path / name)
    trainer = Trainer(
        model, opt_factory(model.parameters()),
        config=config, checkpoint_manager=manager,
    )
    if crash_after_step is None:
        trainer.train(random_examples())
        return model, trainer, manager
    injector = FaultInjector().fail_when(
        "training.checkpoint_saved", step=crash_after_step
    )
    with injector.active():
        with pytest.raises(InjectedFault):
            trainer.train(random_examples())
    return model, trainer, manager


class TestKillAndResume:
    CONFIG = TrainingConfig(epochs=3, batch_size=4, checkpoint_every=2, seed=7)

    @pytest.mark.parametrize("crash_after", [2, 4, 8])
    def test_resumed_run_is_bit_identical(self, tmp_path, crash_after):
        ref_model, ref_trainer, _ = run_training(tmp_path, "ref", self.CONFIG)
        reference = ref_model.state_dict()

        _, _, manager = run_training(
            tmp_path, f"crash{crash_after}", self.CONFIG,
            crash_after_step=crash_after,
        )
        assert manager.latest().step == crash_after

        # Fresh process stand-in: new model (different init!), optimizer
        # and trainer; resume() must restore everything that matters.
        model = MistralTiny(TINY, rng=999)
        trainer = Trainer(
            model, AdamW(model.parameters(), lr=3e-3),
            config=self.CONFIG, checkpoint_manager=manager,
        )
        assert trainer.resume() == crash_after
        trainer.train(random_examples())

        assert trainer.global_step == ref_trainer.global_step
        resumed = model.state_dict()
        for key in reference:
            assert np.array_equal(reference[key], resumed[key]), key

    def test_parity_with_grad_accumulation(self, tmp_path):
        config = TrainingConfig(
            epochs=2, batch_size=4, grad_accum_steps=2, checkpoint_every=3, seed=3
        )
        ref_model, _, _ = run_training(tmp_path, "ref", config)
        _, _, manager = run_training(
            tmp_path, "crash", config, crash_after_step=3
        )
        model = MistralTiny(TINY, rng=42)
        trainer = Trainer(
            model, AdamW(model.parameters(), lr=3e-3),
            config=config, checkpoint_manager=manager,
        )
        trainer.resume()
        trainer.train(random_examples())
        reference = ref_model.state_dict()
        resumed = model.state_dict()
        for key in reference:
            assert np.array_equal(reference[key], resumed[key]), key

    def test_parity_with_sgd_momentum(self, tmp_path):
        opt = lambda params: SGD(params, lr=1e-2, momentum=0.9)
        ref_model, _, _ = run_training(tmp_path, "ref", self.CONFIG, opt_factory=opt)
        _, _, manager = run_training(
            tmp_path, "crash", self.CONFIG, crash_after_step=4, opt_factory=opt
        )
        model = MistralTiny(TINY, rng=11)
        trainer = Trainer(
            model, SGD(model.parameters(), lr=1e-2, momentum=0.9),
            config=self.CONFIG, checkpoint_manager=manager,
        )
        trainer.resume()
        trainer.train(random_examples())
        reference = ref_model.state_dict()
        resumed = model.state_dict()
        for key in reference:
            assert np.array_equal(reference[key], resumed[key]), key

    def test_resume_restores_optimizer_moments(self, tmp_path):
        _, crashed_trainer, manager = run_training(
            tmp_path, "crash", self.CONFIG, crash_after_step=4
        )
        model = MistralTiny(TINY, rng=1)
        optimizer = AdamW(model.parameters(), lr=3e-3)
        trainer = Trainer(
            model, optimizer, config=self.CONFIG, checkpoint_manager=manager
        )
        trainer.resume()
        saved = CheckpointManager.load_optimizer_state(manager.latest())
        assert saved is not None
        restored = optimizer.state_dict()
        assert int(restored["step_count"]) == 4
        for key, value in saved.items():
            assert np.array_equal(np.asarray(value), np.asarray(restored[key])), key

    def test_param_only_checkpoints_still_resume(self, tmp_path):
        """Pre-resilience checkpoints (no moments, no metadata) load fine."""
        model = MistralTiny(TINY, rng=0)
        manager = CheckpointManager(tmp_path)
        manager.save(model, step=6, lr=0.01)
        fresh = MistralTiny(TINY, rng=5)
        trainer = Trainer(
            fresh, AdamW(fresh.parameters(), lr=3e-3),
            config=self.CONFIG, checkpoint_manager=manager,
        )
        assert trainer.resume() == 6
        assert trainer._resume_state is None
        for name, param in fresh.named_parameters():
            assert np.array_equal(param.data, dict(model.named_parameters())[name].data)


class TestCheckpointMetadata:
    def test_extra_round_trips_through_listing(self, tmp_path):
        model = MistralTiny(TINY, rng=0)
        manager = CheckpointManager(tmp_path)
        manager.save(model, step=2, lr=0.1, extra={"epoch": 3, "note": "mid-run"})
        record = manager.checkpoints()[-1]
        assert record.extra["epoch"] == 3
        assert record.extra["note"] == "mid-run"
        assert record.step == 2 and record.lr == 0.1

    def test_prune_removes_optimizer_state_too(self, tmp_path):
        model = MistralTiny(TINY, rng=0)
        opt = AdamW(model.parameters(), lr=1e-3)
        manager = CheckpointManager(tmp_path, keep=1)
        manager.save(model, step=1, lr=0.1, optimizer=opt)
        manager.save(model, step=2, lr=0.1, optimizer=opt)
        records = manager.checkpoints()
        assert [r.step for r in records] == [2]
        assert not (tmp_path / "step-000001.opt.npz").exists()
        assert records[0].has_optimizer_state

    def test_opt_npz_not_listed_as_checkpoint(self, tmp_path):
        model = MistralTiny(TINY, rng=0)
        opt = AdamW(model.parameters(), lr=1e-3)
        manager = CheckpointManager(tmp_path)
        manager.save(model, step=1, lr=0.1, optimizer=opt)
        records = manager.checkpoints()
        assert [r.step for r in records] == [1]
        assert records[0].opt_path.exists()


# ----------------------------------------------------------------------
# Influence engine: crashed-worker requeue
# ----------------------------------------------------------------------


needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="requires fork start method",
)


@needs_fork
class TestInfluenceRequeue:
    def build(self, tmp_path):
        model = MistralTiny(TINY, rng=0)
        manager = CheckpointManager(tmp_path)
        trainer = Trainer(
            model, SGD(model.parameters(), lr=1e-2),
            config=TrainingConfig(epochs=1, batch_size=4, checkpoint_every=2, seed=0),
            checkpoint_manager=manager,
        )
        trainer.train(random_examples(n=8))
        return model, manager.checkpoints()

    def test_crashed_worker_chunk_requeued(self, tmp_path):
        from repro.influence.engine import ParallelInfluenceEngine
        from repro.influence.store import GradientStore

        model, checkpoints = self.build(tmp_path)
        train = random_examples(n=4, seed=1)
        test = random_examples(n=2, seed=2)
        weights = [0.01] * len(checkpoints)

        serial = ParallelInfluenceEngine(
            model, checkpoints, workers=0,
            store=GradientStore(obs=Observability.disabled()),
            obs=Observability.disabled(),
        )
        expected = serial.influence_matrix(train, test, weights)

        obs = Observability.create()
        crash_step = checkpoints[1].step
        injector = FaultInjector().fail_when("influence.worker", step=crash_step)
        engine = ParallelInfluenceEngine(
            model, checkpoints, workers=2,
            store=GradientStore(obs=obs),
            retry_policy=RetryPolicy(
                max_attempts=2, sleep=SleepRecorder(), obs=obs
            ),
            obs=obs,
        )
        with injector.active():
            actual = engine.influence_matrix(train, test, weights)

        np.testing.assert_allclose(actual, expected, atol=1e-10)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["influence.worker_requeued"] >= 1


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestCLIResume:
    def test_train_parser_accepts_resume(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["train", "--data", "d.jsonl", "--out", "m/",
             "--checkpoint-dir", "ckpts", "--resume"]
        )
        assert args.resume is True

    def test_resume_requires_checkpoint_dir(self, tmp_path, capsys):
        from repro.cli import main
        from repro.data import save_jsonl
        from repro.data.instruct import InstructExample

        data = tmp_path / "d.jsonl"
        save_jsonl(
            [InstructExample("will they repay?", "yes", 1),
             InstructExample("will they repay?", "no", 0)],
            data,
        )
        code = main(["train", "--data", str(data), "--out", str(tmp_path / "m"), "--resume"])
        assert code == 2
        assert "requires --checkpoint-dir" in capsys.readouterr().err

    def test_resume_of_finished_run_is_a_clean_noop(self, tmp_path, capsys):
        """Regression: resuming a run whose checkpoints already cover every
        step crashed on ``history.losses[0]`` (empty history)."""
        from repro.cli import main
        from repro.data import save_jsonl
        from repro.data.instruct import InstructExample

        data = tmp_path / "d.jsonl"
        save_jsonl(
            [InstructExample("will they repay?", "yes", 1),
             InstructExample("will they repay?", "no", 0)],
            data,
        )
        common = [
            "train", "--data", str(data), "--epochs", "2",
            "--checkpoint-dir", str(tmp_path / "ck"),
        ]
        assert main(common + ["--out", str(tmp_path / "m1")]) == 0
        capsys.readouterr()
        assert main(common + ["--out", str(tmp_path / "m2"), "--resume"]) == 0
        out = capsys.readouterr().out
        assert "nothing to train" in out
        assert (tmp_path / "m2").exists()
