"""Hypothesis properties for the serving tier: engine and cluster.

The scheduler contract under test, for *any* interleaving of submits,
pumps, crashes, health sweeps and drains:

* no request is ever lost — every accepted submit resolves,
* no request ever resolves twice (the ``PendingResult`` guard),
* the single-queue engine never reorders requests (so per-tenant order
  holds), and
* admission control rejects exactly when it should: queue at capacity
  or tenant at quota.

``max_examples`` is intentionally left to the active hypothesis profile
(see ``conftest.py``): 200 locally, bounded via ``HYPOTHESIS_PROFILE=ci``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueueFullError, ReplicaCrashedError, ServingError
from repro.serving import (
    ClusterConfig,
    ClusterSupervisor,
    EngineConfig,
    MicroBatchEngine,
    PendingResult,
    ReplicaApp,
    ScoreRequest,
    ScoreResult,
)

from conftest import StubClassifier


TENANTS = ("acme", "globex", "initech")


def _result_for(request: ScoreRequest) -> ScoreResult:
    score = (len(request.behavior_text) % 10) / 10.0 + 0.05
    return ScoreResult(
        user_id=request.user_id,
        score=score,
        approved=score < 0.5,
        threshold=0.5,
        cached=False,
    )


def _batch_fn(requests):
    return [_result_for(r) for r in requests]


def _stub_replica_factory(replica_id: int) -> ReplicaApp:
    return ReplicaApp(batch_fn=_batch_fn)


# Engine ops: submit for one of three tenants, or pump one batch.
engine_ops = st.lists(
    st.one_of(
        st.tuples(st.just("submit"), st.sampled_from(range(len(TENANTS)))),
        st.tuples(st.just("pump"), st.just(0)),
    ),
    min_size=1,
    max_size=40,
)


class TestEngineInterleavings:
    @given(ops=engine_ops, capacity=st.integers(1, 6), batch=st.integers(1, 4))
    def test_no_loss_no_double_resolve_no_reorder(self, ops, capacity, batch):
        engine = MicroBatchEngine(
            batch_fn=_batch_fn,
            config=EngineConfig(
                max_batch_size=batch, max_wait_s=0.0, queue_capacity=capacity
            ),
        )
        accepted: list[PendingResult] = []
        completions: list[str] = []
        callback_counts: dict[int, int] = {}
        serial = 0

        for op, arg in ops:
            if op == "submit":
                serial += 1
                request = ScoreRequest(TENANTS[arg], f"txn-{serial}")
                depth_before = engine.queue_depth
                try:
                    pending = engine.submit(request)
                except QueueFullError:
                    # Backpressure only ever fires at capacity.
                    assert depth_before == capacity
                    continue
                key = id(pending)
                callback_counts[key] = 0

                def record(p, key=key):
                    callback_counts[key] += 1
                    completions.append(p.request.behavior_text)

                pending.add_done_callback(record)
                accepted.append(pending)
            else:
                engine.pump()

        while engine.queue_depth:
            engine.pump()

        # No loss, exactly-once, FIFO (hence per-tenant order).
        assert all(p.done for p in accepted)
        assert all(count == 1 for count in callback_counts.values())
        assert completions == [p.request.behavior_text for p in accepted]

    @given(ops=engine_ops)
    def test_withdraw_resolves_every_queued_request(self, ops):
        engine = MicroBatchEngine(
            batch_fn=_batch_fn,
            config=EngineConfig(max_batch_size=2, max_wait_s=0.0, queue_capacity=50),
        )
        accepted = []
        for op, arg in ops:
            if op == "submit":
                accepted.append(engine.submit(ScoreRequest(TENANTS[arg], f"t{len(accepted)}")))
            else:
                engine.pump()
        engine.withdraw_all(ReplicaCrashedError("chaos"))
        assert engine.queue_depth == 0
        assert all(p.done for p in accepted)
        for p in accepted:
            assert p.error is None or isinstance(p.error, ReplicaCrashedError)


# Cluster ops add crashes and health sweeps to the engine vocabulary.
cluster_ops = st.lists(
    st.one_of(
        st.tuples(st.just("submit"), st.sampled_from(range(len(TENANTS)))),
        st.tuples(st.just("pump"), st.just(0)),
        st.tuples(st.just("kill"), st.integers(0, 2)),
        st.tuples(st.just("health"), st.just(0)),
    ),
    min_size=1,
    max_size=30,
)


class TestClusterInterleavings:
    @given(ops=cluster_ops, replicas=st.integers(1, 3))
    def test_every_accepted_request_resolves_exactly_once(self, ops, replicas):
        cluster = ClusterSupervisor(
            _stub_replica_factory,
            ClusterConfig(
                replicas=replicas,
                max_batch_size=3,
                queue_capacity=4,
                max_redispatch=3,
                max_restarts=100,
            ),
        )
        cluster.launch()
        accepted: list[PendingResult] = []
        callback_counts: dict[int, int] = {}
        serial = 0

        for op, arg in ops:
            if op == "submit":
                serial += 1
                try:
                    pending = cluster.submit(ScoreRequest(TENANTS[arg], f"txn-{serial}"))
                except QueueFullError:
                    continue
                key = id(pending)
                callback_counts[key] = 0
                pending.add_done_callback(
                    lambda p, key=key: callback_counts.__setitem__(
                        key, callback_counts[key] + 1
                    )
                )
                accepted.append(pending)
            elif op == "pump":
                cluster.pump()
            elif op == "kill":
                cluster.replicas[arg % replicas].transport.kill()
            else:
                cluster.check_health()

        cluster.check_health()  # revive anything dead so drain can finish
        cluster.drain()
        cluster.stop()

        assert all(p.done for p in accepted)
        assert all(count == 1 for count in callback_counts.values())
        for p in accepted:
            if p.error is not None:
                assert isinstance(p.error, (ReplicaCrashedError, QueueFullError))
            else:
                assert p.result(timeout=0).replica is not None
        assert cluster.stats.resolved == len(accepted)
        # The cluster converged healthy: every replica was revivable.
        assert cluster.stats.completed + cluster.stats.failed == len(accepted)

    @given(ops=cluster_ops, quota=st.integers(1, 3))
    def test_tenant_quota_never_exceeded(self, ops, quota):
        cluster = ClusterSupervisor(
            _stub_replica_factory,
            ClusterConfig(replicas=2, max_batch_size=2, queue_capacity=50, tenant_quota=quota),
        )
        cluster.launch()
        inflight: dict[str, int] = {t: 0 for t in TENANTS}
        serial = 0

        def release(p):
            inflight[p.request.user_id] -= 1

        for op, arg in ops:
            if op == "submit":
                serial += 1
                tenant = TENANTS[arg]
                try:
                    pending = cluster.submit(ScoreRequest(tenant, f"txn-{serial}"))
                except QueueFullError:
                    # Queues are deep, so a rejection means the tenant hit
                    # quota — or every replica is currently dead.
                    all_dead = all(
                        s == "dead" for s in cluster.replica_states().values()
                    )
                    assert inflight[tenant] >= quota or all_dead
                    continue
                inflight[tenant] += 1
                pending.add_done_callback(release)
            elif op == "pump":
                cluster.pump()
            elif op == "kill":
                cluster.replicas[arg % 2].transport.kill()
            else:
                cluster.check_health()
            assert all(0 <= n <= quota for n in inflight.values())

        cluster.check_health()
        cluster.drain()
        cluster.stop()
        assert all(n == 0 for n in inflight.values())


class TestPendingResultExactlyOnce:
    @given(
        first=st.sampled_from(["resolve", "reject"]),
        second=st.sampled_from(["resolve", "reject"]),
    )
    @settings(max_examples=8, deadline=None)
    def test_second_finalization_raises(self, first, second):
        pending = PendingResult(ScoreRequest("u", "text"))
        fired = []
        pending.add_done_callback(lambda p: fired.append(1))

        def finalize(kind):
            if kind == "resolve":
                pending._resolve(_result_for(pending.request))
            else:
                pending._reject(RuntimeError("boom"))

        finalize(first)
        with pytest.raises(ServingError):
            finalize(second)
        assert fired == [1]
        assert pending.done

    def test_late_callback_fires_immediately(self):
        pending = PendingResult(ScoreRequest("u", "text"))
        pending._resolve(_result_for(pending.request))
        fired = []
        pending.add_done_callback(lambda p: fired.append(p.request.user_id))
        assert fired == ["u"]


class TestStubParityWithEngine:
    """The shared conftest stub scores identically through every tier."""

    def test_engine_matches_direct_stub(self):
        stub = StubClassifier()
        texts = [f"balance={'x' * i}" for i in range(7)]
        direct = [stub._score(f"sentence: {t}") for t in texts]
        results = [_result_for(ScoreRequest("u", f"sentence: {t}")) for t in texts]
        assert [r.score for r in results] == pytest.approx(direct)
