"""Chaos regression suite for the serving cluster.

Every scenario follows the same shape: submit real traffic, break
something *mid-flight* (SIGKILL a fork replica, trip a breaker during a
rolling deploy, crash the health-check loop itself), then prove two
things — **no submitted request is silently dropped** (each resolves
with a result or an explicit error) and **the cluster converges back to
healthy**.  The obs trail is part of the contract: restart / swap
counters must be visible in ``repro obs report`` output.

Fast deterministic scenarios run in tier-1; the fork/SIGKILL and
threaded-loop scenarios are marked ``slow`` and run in the CI
``cluster`` job (``-m "slow or chaos"``).
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.errors import InjectedFault, ReplicaCrashedError
from repro.obs import Observability, read_events, render_report
from repro.resilience import FaultInjector
from repro.serving import (
    ClusterConfig,
    ClusterSupervisor,
    ReplicaApp,
    ScoreRequest,
    ScoreResult,
)


pytestmark = pytest.mark.chaos


def stub_factory(replica_id: int) -> ReplicaApp:
    box = {"version": 1}

    def batch_fn(requests):
        return [
            ScoreResult(
                user_id=r.user_id,
                score=(len(r.behavior_text) % 10) / 10.0 + 0.05,
                approved=True,
                threshold=0.5,
                cached=False,
            )
            for r in requests
        ]

    def swap(state):
        box["version"] += 1

    return ReplicaApp(
        batch_fn=batch_fn, swap_weights=swap, weight_version=lambda: box["version"]
    )


def requests(n: int) -> list[ScoreRequest]:
    return [ScoreRequest(f"user-{i}", f"txn {'x' * (i % 11)}") for i in range(n)]


def assert_nothing_dropped(pendings) -> tuple[int, int]:
    """Every pending resolved — with a result or an explicit error."""
    completed = failed = 0
    for p in pendings:
        assert p.done, f"request {p.request.user_id} was silently dropped"
        if p.error is None:
            completed += 1
        else:
            failed += 1
    return completed, failed


class TestKillMidBatch:
    def test_thread_replica_killed_between_submits(self):
        cluster = ClusterSupervisor(stub_factory, ClusterConfig(replicas=2))
        cluster.launch()
        pendings = [cluster.submit(r) for r in requests(6)]
        cluster.replicas[0].transport.kill()
        pendings += [cluster.submit(r) for r in requests(4)]
        cluster.drain()
        completed, failed = assert_nothing_dropped(pendings)
        assert completed == 10 and failed == 0  # survivor rescued everything
        cluster.check_health()
        assert cluster.healthy_count() == 2
        cluster.stop()

    def test_forward_fault_mid_batch_redispatches(self):
        injector = FaultInjector().fail_nth(
            "cluster.replica.forward",
            1,
            exc=lambda msg: ReplicaCrashedError(msg),
        )
        cluster = ClusterSupervisor(stub_factory, ClusterConfig(replicas=2))
        cluster.launch()
        pendings = [cluster.submit(r) for r in requests(8)]
        with injector.active():
            cluster.drain()
        completed, failed = assert_nothing_dropped(pendings)
        assert completed == 8 and failed == 0
        assert cluster.stats.redispatched > 0
        cluster.check_health()
        assert cluster.healthy_count() == 2
        cluster.stop()

    @pytest.mark.slow
    def test_fork_replica_sigkill_mid_batch(self):
        cluster = ClusterSupervisor(
            stub_factory,
            ClusterConfig(
                replicas=2, transport="fork", rpc_timeout_s=15.0, health_interval_s=0.05
            ),
        )
        cluster.start()
        try:
            pendings = [cluster.submit(r) for r in requests(8)]
            victim = cluster.replicas[0]
            os.kill(victim.transport.pid, signal.SIGKILL)
            results = [p.result(timeout=30.0) for p in pendings if p.error is None]
            completed, failed = assert_nothing_dropped(pendings)
            assert completed + failed == 8
            assert completed >= 4  # at minimum the survivor's share
            assert all(r.replica in (0, 1) for r in results)
            deadline = time.time() + 10.0
            while cluster.healthy_count() < 2 and time.time() < deadline:
                time.sleep(0.05)
            assert cluster.healthy_count() == 2  # auto-restart converged
            assert cluster.stats.restarts >= 1
        finally:
            cluster.stop()


class TestBreakerTripMidDeploy:
    def test_swap_crash_restarts_with_staged_weights(self):
        injector = FaultInjector().fail_nth(
            "cluster.deploy.swap",
            1,
            exc=lambda msg: ReplicaCrashedError(msg),
        )
        obs = Observability.create()
        cluster = ClusterSupervisor(stub_factory, ClusterConfig(replicas=2), obs=obs)
        cluster.launch()
        with injector.active():
            swapped = cluster.deploy({"w": 2.0})
        assert swapped == 2
        # Replica 0 crashed mid-swap, was restarted, and the restart
        # applied the staged weights — both replicas converge on v2.
        assert set(cluster.weight_versions().values()) == {2}
        assert cluster.stats.restarts == 1
        assert cluster.healthy_count() == 2
        counters = obs.metrics.snapshot()["counters"]
        assert counters["cluster.replica_restarted"] == 1
        cluster.stop()

    def test_breaker_opens_then_deploy_still_converges(self):
        obs = Observability.create()
        cluster = ClusterSupervisor(
            stub_factory,
            ClusterConfig(replicas=2, breaker_min_calls=1, breaker_failure_threshold=0.5),
            obs=obs,
        )
        cluster.launch()
        # Trip replica 0's breaker with real crash traffic.
        cluster.replicas[0].transport.kill()
        pendings = [cluster.submit(r) for r in requests(6)]
        cluster.drain()
        assert cluster.replicas[0].breaker.state == "open"
        assert_nothing_dropped(pendings)
        # Deploy mid-outage: the dead replica picks the staged weights
        # up on restart; the live one swaps in place.
        cluster.deploy({"w": 9.0})
        cluster.check_health()
        assert set(cluster.weight_versions().values()) == {2}
        assert cluster.healthy_count() == 2
        assert cluster.replicas[0].breaker.state == "closed"
        cluster.stop()


class TestHealthLoopCrash:
    def test_sweep_crash_is_survivable(self):
        injector = FaultInjector().fail_times("cluster.health_check", 2)
        cluster = ClusterSupervisor(stub_factory, ClusterConfig(replicas=2))
        cluster.launch()
        cluster.replicas[0].transport.kill()
        cluster.serve(requests(4))
        with injector.active():
            with pytest.raises(InjectedFault):
                cluster.check_health()
            with pytest.raises(InjectedFault):
                cluster.check_health()
            # Third sweep runs clean and restarts the dead replica.
            states = cluster.check_health()
        assert states[0] == "healthy"
        assert cluster.healthy_count() == 2
        cluster.stop()

    @pytest.mark.slow
    def test_threaded_loop_survives_sweep_crashes(self):
        injector = FaultInjector().fail_times("cluster.health_check", 3)
        obs = Observability.create()
        cluster = ClusterSupervisor(
            stub_factory,
            ClusterConfig(replicas=2, health_interval_s=0.02),
            obs=obs,
        )
        with injector.active():
            cluster.start()
            try:
                cluster.replicas[0].transport.kill()
                # Wait until the loop has both absorbed the injected
                # sweep crashes and restarted the killed replica.
                deadline = time.time() + 10.0
                while time.time() < deadline:
                    counters = obs.metrics.snapshot()["counters"]
                    if (
                        counters.get("cluster.health_check_errors", 0) >= 3
                        and cluster.stats.restarts >= 1
                    ):
                        break
                    time.sleep(0.02)
                assert cluster.healthy_count() == 2
                counters = obs.metrics.snapshot()["counters"]
                assert counters["cluster.health_check_errors"] == 3
                assert counters["cluster.replica_restarted"] >= 1
                pendings = [cluster.submit(r) for r in requests(6)]
                assert all(p.result(timeout=10.0) for p in pendings)
            finally:
                cluster.stop()


class TestObsReportVisibility:
    def test_restart_and_swap_counters_in_report(self, tmp_path):
        """The acceptance trail: chaos counters land in `repro obs report`."""
        events_path = tmp_path / "cluster-run.jsonl"
        obs = Observability.create(events_path=events_path)
        cluster = ClusterSupervisor(stub_factory, ClusterConfig(replicas=2), obs=obs)
        cluster.launch()
        pendings = [cluster.submit(r) for r in requests(6)]
        cluster.replicas[0].transport.kill()
        cluster.drain()
        cluster.check_health()
        cluster.deploy({"w": 2.0})
        assert_nothing_dropped(pendings)
        obs.events.emit_metrics(obs.metrics)
        cluster.stop()
        obs.events.close()

        report = render_report(read_events(events_path))
        assert "cluster.replica_restarted" in report
        assert "cluster.deploy_swapped" in report
        assert "cluster.replica" in report  # lifecycle events tallied

    def test_report_via_cli(self, tmp_path, capsys):
        from repro.cli import main

        events_path = tmp_path / "run.jsonl"
        obs = Observability.create(events_path=events_path)
        cluster = ClusterSupervisor(stub_factory, ClusterConfig(replicas=2), obs=obs)
        cluster.launch()
        cluster.serve(requests(4))
        cluster.replicas[1].transport.kill()
        cluster.serve(requests(2))
        cluster.check_health()
        obs.events.emit_metrics(obs.metrics)
        cluster.stop()
        obs.events.close()

        assert main(["obs", "report", "--events", str(events_path)]) == 0
        out = capsys.readouterr().out
        assert "cluster.replica_restarted" in out
        assert "cluster.submitted" in out
