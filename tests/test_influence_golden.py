"""Golden regression test pinning TracSeq Top-K selection on a seeded run.

TracSeq is the pipeline's pruning signal (Eq. 1 of the paper): a silent
numerical drift here reorders which training examples survive pruning —
invisible to unit tests that only check shapes and invariants.  This
test replays a fully seeded training + influence run and compares the
Top-K indices (exactly) and scores (to ``RTOL``) against a committed
golden file.

To regenerate after an *intentional* change to training or influence
numerics::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_influence_golden.py

then commit the updated ``tests/golden/tracseq_topk.json`` alongside the
change that moved the numbers.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.influence import TracSeq, top_k_indices
from repro.nn import MistralTiny, ModelConfig
from repro.optim import AdamW
from repro.training import CheckpointManager, Trainer, TrainingConfig

GOLDEN_PATH = Path(__file__).parent / "golden" / "tracseq_topk.json"
RTOL = 1e-5
SEED = 1234
K = 4
GAMMA = 0.9
N_TRAIN, N_TEST = 10, 4


def _seeded_run(tmp_path) -> dict:
    """Train a tiny model deterministically, then score TracSeq influence."""
    config = ModelConfig(
        vocab_size=64, d_model=32, n_layers=2, n_heads=4, n_kv_heads=2,
        d_ff=64, max_seq_len=32, sliding_window=16,
    )
    model = MistralTiny(config, rng=SEED)
    rng = np.random.default_rng(SEED)
    make = lambda: (lambda ids: (ids, ids))(list(rng.integers(5, 60, size=8)))
    train_examples = [make() for _ in range(N_TRAIN)]
    test_examples = [make() for _ in range(N_TEST)]

    manager = CheckpointManager(tmp_path)
    trainer = Trainer(
        model,
        AdamW(model.parameters(), lr=3e-3),
        TrainingConfig(epochs=2, batch_size=5, checkpoint_every=2,
                       shuffle=False, seed=SEED),
        checkpoint_manager=manager,
    )
    trainer.train(train_examples)

    scores = TracSeq(model, manager.checkpoints(), gamma=GAMMA).scores(
        train_examples, test_examples
    )
    top_k = top_k_indices(scores, K)
    return {
        "seed": SEED,
        "gamma": GAMMA,
        "k": K,
        "n_checkpoints": len(manager.checkpoints()),
        "top_k": [int(i) for i in top_k],
        "scores": [float(s) for s in scores],
    }


def test_tracseq_topk_matches_golden(tmp_path):
    run = _seeded_run(tmp_path)

    if os.environ.get("REGEN_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(run, indent=2) + "\n")
        pytest.skip(f"golden file regenerated at {GOLDEN_PATH}")

    assert GOLDEN_PATH.exists(), (
        f"missing golden file {GOLDEN_PATH}; generate it with REGEN_GOLDEN=1"
    )
    golden = json.loads(GOLDEN_PATH.read_text())

    # Fixture drift guard: the run setup itself must match what was pinned.
    for key in ("seed", "gamma", "k", "n_checkpoints"):
        assert run[key] == golden[key], f"run setup changed: {key}"

    # Top-K selection is pinned exactly — this IS the pruning decision.
    assert run["top_k"] == golden["top_k"]

    np.testing.assert_allclose(
        run["scores"], golden["scores"], rtol=RTOL,
        err_msg="TracSeq influence scores drifted from the golden run",
    )


def test_golden_selection_is_internally_consistent(tmp_path):
    """Top-K must be the argsort of the pinned scores (stable, descending)."""
    if not GOLDEN_PATH.exists():
        pytest.skip("golden file not generated yet")
    golden = json.loads(GOLDEN_PATH.read_text())
    expected = top_k_indices(np.array(golden["scores"]), golden["k"])
    assert golden["top_k"] == [int(i) for i in expected]
