"""Instruction-data validation tests."""

from __future__ import annotations

import pytest

from repro.errors import DataError
from repro.data import (
    InstructExample,
    deduplicate_examples,
    drop_conflicting_examples,
    validate_examples,
)


def ex(prompt, answer="yes", label=1):
    return InstructExample(prompt=prompt, answer=answer, label=label)


class TestValidateExamples:
    def test_clean_data_is_ok(self, german_examples):
        report = validate_examples(german_examples[:50])
        assert report.ok
        assert report.n_examples == 50
        assert set(report.answer_vocabulary) <= {"good", "bad"}

    def test_duplicates_flagged(self):
        report = validate_examples([ex("p1"), ex("p1"), ex("p2")])
        assert report.duplicate_prompts == 1
        assert not report.ok
        assert any("duplicate" in issue for issue in report.issues)

    def test_conflicts_flagged(self):
        report = validate_examples([ex("p1", "yes", 1), ex("p1", "no", 0)])
        assert report.conflicting_prompts == 1
        assert any("conflicting" in issue for issue in report.issues)

    def test_empty_fields_flagged(self):
        report = validate_examples([ex("  "), ex("p", "")])
        assert report.empty_prompts == 1
        assert report.empty_answers == 1

    def test_vocabulary_overflow_flagged(self):
        examples = [ex("p1", "a"), ex("p2", "b"), ex("p3", "c"), ex("p4", "d")]
        report = validate_examples(examples, max_answers=2)
        assert any("vocabulary" in issue for issue in report.issues)

    def test_prompt_length_limit(self):
        report = validate_examples([ex("one two three four")], max_prompt_words=3)
        assert report.max_prompt_words == 4
        assert any("longest prompt" in issue for issue in report.issues)

    def test_empty_input_raises(self):
        with pytest.raises(DataError):
            validate_examples([])


class TestCleaners:
    def test_deduplicate_keeps_first(self):
        a, b = ex("p1"), ex("p1")
        kept = deduplicate_examples([a, b, ex("p2")])
        assert len(kept) == 2
        assert kept[0] is a

    def test_deduplicate_keeps_distinct_answers(self):
        kept = deduplicate_examples([ex("p1", "yes", 1), ex("p1", "no", 0)])
        assert len(kept) == 2  # conflicting, but not duplicate pairs

    def test_drop_conflicting_removes_all_occurrences(self):
        kept = drop_conflicting_examples(
            [ex("p1", "yes", 1), ex("p1", "no", 0), ex("p2")]
        )
        assert [e.prompt for e in kept] == ["p2"]

    def test_pipeline_dedupe_then_validate(self):
        examples = [ex("p1"), ex("p1"), ex("p2")]
        report = validate_examples(deduplicate_examples(examples))
        assert report.duplicate_prompts == 0
