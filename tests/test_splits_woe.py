"""Split helpers and WoE/IV tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DataError
from repro.data import (
    InstructExample,
    split_by_group,
    split_by_time,
    stratified_split,
)
from repro.datasets import make_german
from repro.ml import dataset_iv, woe_iv


def ex(prompt, label=1, timestamp=0.0, user=0):
    return InstructExample(
        prompt=prompt, answer="yes" if label else "no", label=label,
        timestamp=timestamp, meta={"user": user},
    )


class TestSplitByTime:
    def test_partitions_on_cutoff(self):
        examples = [ex(f"p{i}", timestamp=float(i)) for i in range(6)]
        past, future = split_by_time(examples, cutoff=3.0)
        assert [e.timestamp for e in past] == [0.0, 1.0, 2.0]
        assert all(e.timestamp >= 3.0 for e in future)

    def test_degenerate_cutoff_raises(self):
        examples = [ex("p", timestamp=1.0)]
        with pytest.raises(DataError):
            split_by_time(examples, cutoff=0.0)
        with pytest.raises(DataError):
            split_by_time([], cutoff=1.0)


class TestSplitByGroup:
    def _examples(self, n_users=10, per_user=4):
        return [
            ex(f"u{u}-{i}", label=u % 2, user=u)
            for u in range(n_users)
            for i in range(per_user)
        ]

    def test_no_group_overlap(self):
        examples = self._examples()
        train, test = split_by_group(examples, lambda e: e.meta["user"], 0.3, seed=0)
        train_users = {e.meta["user"] for e in train}
        test_users = {e.meta["user"] for e in test}
        assert train_users.isdisjoint(test_users)
        assert len(train) + len(test) == len(examples)

    def test_test_fraction_respected_roughly(self):
        examples = self._examples(n_users=20)
        _, test = split_by_group(examples, lambda e: e.meta["user"], 0.25, seed=1)
        assert 0.15 <= len(test) / len(examples) <= 0.45

    def test_seeded(self):
        examples = self._examples()
        a = split_by_group(examples, lambda e: e.meta["user"], 0.3, seed=5)
        b = split_by_group(examples, lambda e: e.meta["user"], 0.3, seed=5)
        assert a == b

    def test_single_group_raises(self):
        with pytest.raises(DataError):
            split_by_group([ex("a"), ex("b")], lambda e: 0, 0.5)

    def test_never_empties_train(self):
        examples = self._examples(n_users=2)
        train, test = split_by_group(examples, lambda e: e.meta["user"], 0.9, seed=0)
        assert train and test


class TestStratifiedSplit:
    def test_class_mix_preserved(self):
        examples = [ex(f"p{i}", label=int(i < 20)) for i in range(100)]
        train, test = stratified_split(examples, 0.2, seed=0)
        train_rate = np.mean([e.label for e in train])
        test_rate = np.mean([e.label for e in test])
        assert abs(train_rate - test_rate) < 0.05

    def test_every_class_in_test(self):
        examples = [ex(f"p{i}", label=i % 2) for i in range(10)]
        _, test = stratified_split(examples, 0.2, seed=0)
        assert {e.label for e in test} == {0, 1}

    def test_validation(self):
        with pytest.raises(DataError):
            stratified_split([], 0.2)
        with pytest.raises(DataError):
            stratified_split([ex("p")], 0.0)


class TestWoeIV:
    def test_predictive_feature_has_high_iv(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 2000)
        strong = y * 2.0 + rng.normal(0, 0.3, 2000)
        noise = rng.normal(0, 1, 2000)
        iv_strong = woe_iv(strong, y).iv
        iv_noise = woe_iv(noise, y).iv
        assert iv_strong > 0.5
        assert iv_noise < 0.05
        assert iv_strong > iv_noise

    def test_woe_signs(self):
        """Bins dominated by goods get positive WoE."""
        y = np.array([1] * 50 + [0] * 50)
        values = np.array([1.0] * 50 + [0.0] * 50)  # two distinct values
        result = woe_iv(values, y)
        by_label = {b.label: b for b in result.bins}
        assert by_label["=1"].woe > 0
        assert by_label["=0"].woe < 0

    def test_strength_bands(self):
        from repro.ml import FeatureIV

        assert FeatureIV("f", 0.01, ()).strength == "useless"
        assert FeatureIV("f", 0.05, ()).strength == "weak"
        assert FeatureIV("f", 0.2, ()).strength == "medium"
        assert FeatureIV("f", 0.4, ()).strength == "strong"
        assert FeatureIV("f", 0.9, ()).strength == "suspicious"

    def test_categorical_small_cardinality_binned_exactly(self):
        y = np.array([0, 1, 0, 1, 0, 1])
        values = np.array([0.0, 1.0, 0.0, 1.0, 2.0, 2.0])
        result = woe_iv(values, y, n_bins=5)
        assert len(result.bins) == 3

    def test_validation(self):
        with pytest.raises(DataError):
            woe_iv(np.array([]), np.array([]))
        with pytest.raises(DataError):
            woe_iv(np.ones(3), np.ones(3))  # single class
        with pytest.raises(DataError):
            woe_iv(np.ones(3), np.array([0, 1]))

    def test_dataset_iv_sorted_and_sensible(self):
        dataset = make_german(n=600, seed=0)
        results = dataset_iv(dataset)
        assert len(results) == len(dataset.features)
        ivs = [r.iv for r in results]
        assert ivs == sorted(ivs, reverse=True)
        names = [r.feature for r in results]
        # checking_status and savings are the strongest generative drivers.
        assert "checking_status" in names[:4]
