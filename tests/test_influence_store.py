"""Gradient store + parallel influence engine tests.

Covers the ISSUE-3 acceptance points: cached results are numerically
identical to uncached ones, changing the projector seed invalidates the
cache, partially written checkpoints don't poison influence runs, and
the projector is deterministic across processes (the parallel engine
depends on it).
"""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest

from repro.errors import InfluenceError
from repro.influence import (
    GradientStore,
    GradientProjector,
    TracInCP,
    TracSeq,
    example_content_hash,
    gradient_matrix,
    projector_key,
    trainable_parameters,
)
from repro.obs import Observability
from repro.optim import AdamW
from repro.training import CheckpointManager, Trainer, TrainingConfig


def make_example(ids):
    return (list(ids), list(ids))


@pytest.fixture
def checkpoints(tiny_model, tmp_path):
    rng = np.random.default_rng(0)
    examples = [make_example(rng.integers(5, 60, size=8)) for _ in range(12)]
    manager = CheckpointManager(tmp_path / "ckpt")
    trainer = Trainer(
        tiny_model,
        AdamW(tiny_model.parameters(), lr=3e-3),
        config=TrainingConfig(epochs=2, batch_size=4, checkpoint_every=2),
        checkpoint_manager=manager,
    )
    trainer.train(examples)
    return manager.checkpoints()


@pytest.fixture
def sets():
    rng = np.random.default_rng(7)
    train = [make_example(rng.integers(5, 60, size=8)) for _ in range(6)]
    test = [make_example(rng.integers(5, 60, size=8)) for _ in range(3)]
    return train, test


class TestGradientStore:
    def test_put_get_roundtrip(self):
        store = GradientStore()
        row = np.arange(4.0)
        store.put(1, "abc", "exact", row)
        np.testing.assert_array_equal(store.get(1, "abc", "exact"), row)
        assert store.get(2, "abc", "exact") is None

    def test_key_isolation(self):
        """Same example hash under different steps / projectors is distinct."""
        store = GradientStore()
        store.put(1, "h", "p0-k4-d8", np.zeros(4))
        assert store.get(1, "h", "p1-k4-d8") is None
        assert store.get(2, "h", "p0-k4-d8") is None
        assert store.get(1, "h", "p0-k4-d8") is not None

    def test_lru_eviction_by_entries(self):
        store = GradientStore(max_entries=2)
        for i in range(3):
            store.put(0, f"h{i}", "exact", np.full(4, float(i)))
        assert len(store) == 2
        assert store.get(0, "h0", "exact") is None  # oldest evicted
        assert store.get(0, "h2", "exact") is not None

    def test_lru_eviction_by_bytes(self):
        row = np.zeros(16)  # 128 bytes
        store = GradientStore(max_bytes=300)
        for i in range(3):
            store.put(0, f"h{i}", "exact", row)
        assert len(store) == 2

    def test_zero_entries_disables_memory_tier(self):
        store = GradientStore(max_entries=0)
        store.put(0, "h", "exact", np.zeros(4))
        assert len(store) == 0
        assert store.get(0, "h", "exact") is None

    def test_disk_tier_roundtrip(self, tmp_path):
        cache = tmp_path / "grads"
        store = GradientStore(cache_dir=cache)
        store.put(3, "h", "exact", np.arange(5.0))
        assert store.flush() == 1
        shards = list(cache.glob("grads-step000003-exact.npz"))
        assert len(shards) == 1
        fresh = GradientStore(cache_dir=cache)
        np.testing.assert_array_equal(fresh.get(3, "h", "exact"), np.arange(5.0))
        assert fresh.stats()["hits_disk"] == 1

    def test_stats_count_hits_and_misses(self):
        store = GradientStore()
        store.get(0, "h", "exact")
        store.put(0, "h", "exact", np.zeros(2))
        store.get(0, "h", "exact")
        stats = store.stats()
        assert stats["misses"] == 1
        assert stats["hits_memory"] == 1

    def test_invalid_bounds(self):
        with pytest.raises(InfluenceError):
            GradientStore(max_entries=-1)

    def test_example_content_hash_stable_and_content_addressed(self):
        a = example_content_hash(([1, 2, 3], [1, 2, 3]))
        assert a == example_content_hash(([1, 2, 3], [1, 2, 3]))
        assert a != example_content_hash(([1, 2, 4], [1, 2, 3]))
        assert a != example_content_hash(([1, 2, 3], [1, 2, 4]))


class TestCachedParity:
    def test_tracin_cached_matches_uncached(self, tiny_model, checkpoints, sets):
        train, test = sets
        uncached = TracInCP(tiny_model, checkpoints, store=GradientStore(max_entries=0))
        cached = TracInCP(tiny_model, checkpoints)
        np.testing.assert_allclose(
            uncached.scores(train, test), cached.scores(train, test),
            rtol=0, atol=1e-10,
        )
        # Second call reuses every row: identical output, zero new passes.
        obs = Observability.create()
        tracer = TracInCP(tiny_model, checkpoints, obs=obs)
        first = tracer.scores(train, test)
        passes_after_first = obs.metrics.snapshot()["counters"]["influence.gradient_passes"]
        second = tracer.scores(train, test)
        passes_after_second = obs.metrics.snapshot()["counters"]["influence.gradient_passes"]
        np.testing.assert_array_equal(first, second)
        assert passes_after_second == passes_after_first

    def test_tracseq_shared_store_gamma_sweep_parity(self, tiny_model, checkpoints, sets):
        train, test = sets
        dim = sum(p.size for p in trainable_parameters(tiny_model))
        shared = GradientStore()
        obs = Observability.create()
        for gamma in (0.5, 0.9, 1.0):
            projector = GradientProjector(dim, k=64, seed=0)
            fresh = TracSeq(
                tiny_model, checkpoints, gamma=gamma, projector=projector,
                store=GradientStore(max_entries=0),
            )
            reused = TracSeq(
                tiny_model, checkpoints, gamma=gamma, projector=projector,
                store=shared, obs=obs,
            )
            np.testing.assert_allclose(
                fresh.scores(train, test), reused.scores(train, test),
                rtol=0, atol=1e-10,
            )
        # After the first sweep iteration the shared store served everything.
        n_unique = len(train) + len(test)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["influence.gradient_passes"] == len(checkpoints) * n_unique

    def test_checkpoint_products_recombination_matches_scores(
        self, tiny_model, checkpoints, sets
    ):
        """Gamma sweep via products == direct scores, per the docstring."""
        train, test = sets
        tracer = TracSeq(tiny_model, checkpoints, gamma=0.7)
        products = tracer.checkpoint_products(train, test)
        weights = tracer._weights()
        recombined = weights @ products
        np.testing.assert_allclose(
            recombined, tracer.scores(train, test), rtol=1e-10, atol=1e-12
        )

    def test_self_influence_matches_direct_computation(self, tiny_model, checkpoints, sets):
        train, _ = sets
        tracer = TracInCP(tiny_model, checkpoints)
        got = tracer.self_influence(train)
        expected = np.zeros(len(train))
        saved = tiny_model.state_dict()
        try:
            for record in checkpoints:
                CheckpointManager.restore(tiny_model, record)
                g = gradient_matrix(tiny_model, train)
                expected += record.lr * (g * g).sum(axis=1)
        finally:
            tiny_model.load_state_dict(saved)
        np.testing.assert_allclose(got, expected, rtol=1e-10)

    def test_normalized_mode_shares_raw_rows(self, tiny_model, checkpoints, sets):
        """normalize=True reuses the same stored raw rows as normalize=False."""
        train, test = sets
        shared = GradientStore()
        obs = Observability.create()
        plain = TracInCP(tiny_model, checkpoints, store=shared, obs=obs)
        plain.scores(train, test)
        passes = obs.metrics.snapshot()["counters"]["influence.gradient_passes"]
        cosine = TracInCP(tiny_model, checkpoints, normalize=True, store=shared, obs=obs)
        cosine.scores(train, test)
        assert obs.metrics.snapshot()["counters"]["influence.gradient_passes"] == passes


class TestCacheInvalidation:
    def test_changed_projector_seed_recomputes(self, tiny_model, checkpoints, sets):
        train, test = sets
        dim = sum(p.size for p in trainable_parameters(tiny_model))
        shared = GradientStore()
        obs = Observability.create()
        a = TracInCP(
            tiny_model, checkpoints,
            projector=GradientProjector(dim, k=32, seed=0), store=shared, obs=obs,
        )
        scores_a = a.scores(train, test)
        passes = obs.metrics.snapshot()["counters"]["influence.gradient_passes"]
        b = TracInCP(
            tiny_model, checkpoints,
            projector=GradientProjector(dim, k=32, seed=1), store=shared, obs=obs,
        )
        scores_b = b.scores(train, test)
        # New seed -> new cache key -> full recompute, and a different sketch.
        assert obs.metrics.snapshot()["counters"]["influence.gradient_passes"] == 2 * passes
        assert not np.allclose(scores_a, scores_b)

    def test_projector_key_covers_seed_k_dim(self):
        assert projector_key(None) == "exact"
        assert projector_key(GradientProjector(10, k=4, seed=0)) != projector_key(
            GradientProjector(10, k=4, seed=1)
        )
        assert projector_key(GradientProjector(10, k=4, seed=0)) != projector_key(
            GradientProjector(10, k=5, seed=0)
        )


class TestParallelEngine:
    def test_parallel_matches_serial(self, tiny_model, checkpoints, sets):
        train, test = sets
        serial = TracSeq(tiny_model, checkpoints, gamma=0.9).scores(train, test)
        parallel = TracSeq(tiny_model, checkpoints, gamma=0.9, workers=2).scores(train, test)
        np.testing.assert_allclose(serial, parallel, rtol=0, atol=1e-10)

    def test_parallel_with_projector_matches_serial(self, tiny_model, checkpoints, sets):
        train, test = sets
        dim = sum(p.size for p in trainable_parameters(tiny_model))
        serial = TracInCP(
            tiny_model, checkpoints, projector=GradientProjector(dim, k=32, seed=3)
        ).scores(train, test)
        parallel = TracInCP(
            tiny_model, checkpoints,
            projector=GradientProjector(dim, k=32, seed=3), workers=2,
        ).scores(train, test)
        np.testing.assert_allclose(serial, parallel, rtol=0, atol=1e-10)

    def test_parallel_emits_worker_spans(self, tiny_model, checkpoints, sets):
        train, test = sets
        obs = Observability.create()
        TracInCP(tiny_model, checkpoints, workers=2, obs=obs).scores(train, test)
        aggregates = obs.tracer.aggregates()
        assert aggregates["influence.worker"]["count"] == len(checkpoints)
        assert "influence.prefetch" in aggregates

    def test_invalid_workers_rejected(self, tiny_model, checkpoints):
        with pytest.raises(InfluenceError):
            TracInCP(tiny_model, checkpoints, workers=-1)


class TestCrashInjection:
    def test_interrupted_save_leaves_directory_usable(self, tiny_model, tmp_path, monkeypatch):
        """A crash mid-save must not poison checkpoints() for the directory."""
        manager = CheckpointManager(tmp_path)
        manager.save(tiny_model, step=1, lr=0.1)

        import repro.training.checkpoint as ckpt_mod

        def exploding_savez(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(ckpt_mod.np, "savez", exploding_savez)
        with pytest.raises(OSError):
            manager.save(tiny_model, step=2, lr=0.05)
        monkeypatch.undo()

        # No temp or partial files; the earlier checkpoint still lists.
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["step-000001.json", "step-000001.npz"]
        assert [r.step for r in manager.checkpoints()] == [1]

    def test_influence_run_survives_orphan_checkpoint(
        self, tiny_model, checkpoints, sets
    ):
        """An orphan .npz alongside real checkpoints is skipped, not fatal."""
        train, test = sets
        directory = checkpoints[0].path.parent
        (directory / "step-009999.npz").write_bytes(b"partial write")
        manager = CheckpointManager(directory)
        with pytest.warns(RuntimeWarning, match="orphan checkpoint"):
            listed = manager.checkpoints()
        assert [r.step for r in listed] == [r.step for r in checkpoints]
        scores = TracInCP(tiny_model, listed).scores(train, test)
        assert np.isfinite(scores).all()


class TestTracSeqValidation:
    def test_bad_sample_times_fail_before_gradient_work(
        self, tiny_model, checkpoints, sets
    ):
        train, test = sets
        obs = Observability.create()
        tracer = TracSeq(tiny_model, checkpoints, obs=obs)
        with pytest.raises(InfluenceError):
            tracer.scores(train, test, sample_times=[0.0])  # wrong length
        with pytest.raises(InfluenceError):
            tracer.scores(
                train, test,
                sample_times=[9.0] * len(train), test_time=1.0,  # future samples
            )
        counters = obs.metrics.snapshot()["counters"]
        assert counters.get("influence.gradient_passes", 0) == 0
        assert counters.get("influence.checkpoints_replayed", 0) == 0

    def test_span_covers_sample_decay(self, tiny_model, checkpoints, sets):
        train, test = sets
        obs = Observability.create()
        tracer = TracSeq(tiny_model, checkpoints, gamma=0.5, obs=obs)
        tracer.scores(
            train, test,
            sample_times=list(range(len(train))), test_time=len(train),
        )
        root = next(
            span for span in obs.tracer.roots
            if span.name == "influence.tracseq.scores"
        )
        assert root.attrs["sample_decay"] is True


class TestProjectorDeterminism:
    def test_fingerprint_matches_across_processes(self):
        """Workers rebuild identical sketches from (dim, k, seed) alone."""
        projector = GradientProjector(200, k=16, seed=42)
        code = (
            "from repro.influence import GradientProjector;"
            "print(GradientProjector(200, k=16, seed=42).fingerprint())"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd=str(__import__("pathlib").Path(__file__).resolve().parents[1]),
        )
        assert out.stdout.strip() == projector.fingerprint()

    def test_fingerprint_distinguishes_seeds(self):
        assert (
            GradientProjector(50, k=8, seed=0).fingerprint()
            != GradientProjector(50, k=8, seed=1).fingerprint()
        )
