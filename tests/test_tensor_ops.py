"""Tests for the functional ops: softmax, cross entropy, embedding, etc."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import (
    Tensor,
    concat,
    cross_entropy,
    embedding,
    log_softmax,
    softmax,
    stack,
    where,
)

from conftest import numeric_grad


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 7)).astype(np.float32))
        probs = softmax(x).numpy()
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones(4), rtol=1e-5)
        assert (probs >= 0).all()

    def test_stability_large_logits(self):
        x = Tensor(np.array([[1000.0, 1000.0, -1000.0]], dtype=np.float32))
        probs = softmax(x).numpy()
        assert np.isfinite(probs).all()
        np.testing.assert_allclose(probs[0, :2], [0.5, 0.5], atol=1e-5)

    def test_gradient(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(size=(2, 5)).astype(np.float32), requires_grad=True)
        w = rng.normal(size=(2, 5)).astype(np.float32)
        (softmax(x) * Tensor(w)).sum().backward()

        def f():
            return float((softmax(Tensor(x.data)).numpy() * w).sum())

        np.testing.assert_allclose(x.grad, numeric_grad(f, x.data), atol=2e-2, rtol=1e-2)

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(np.random.default_rng(2).normal(size=(3, 6)).astype(np.float32))
        np.testing.assert_allclose(
            log_softmax(x).numpy(), np.log(softmax(x).numpy()), atol=1e-5
        )

    def test_log_softmax_gradient(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(size=(2, 4)).astype(np.float32), requires_grad=True)
        w = rng.normal(size=(2, 4)).astype(np.float32)
        (log_softmax(x) * Tensor(w)).sum().backward()

        def f():
            return float((log_softmax(Tensor(x.data)).numpy() * w).sum())

        np.testing.assert_allclose(x.grad, numeric_grad(f, x.data), atol=2e-2, rtol=1e-2)


class TestCrossEntropy:
    def test_matches_manual_nll(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(5, 8)).astype(np.float32))
        targets = np.array([0, 3, 7, 2, 2])
        loss = cross_entropy(logits, targets).item()
        logp = log_softmax(logits).numpy()
        expected = -logp[np.arange(5), targets].mean()
        assert loss == pytest.approx(expected, rel=1e-5)

    def test_ignore_index_excluded(self):
        logits = Tensor(np.random.default_rng(1).normal(size=(4, 6)).astype(np.float32))
        targets = np.array([1, -100, 2, -100])
        loss = cross_entropy(logits, targets).item()
        logp = log_softmax(logits).numpy()
        expected = -(logp[0, 1] + logp[2, 2]) / 2
        assert loss == pytest.approx(expected, rel=1e-5)

    def test_all_ignored_raises(self):
        logits = Tensor(np.zeros((2, 3), dtype=np.float32))
        with pytest.raises(ShapeError):
            cross_entropy(logits, np.array([-100, -100]))

    def test_shape_mismatch_raises(self):
        logits = Tensor(np.zeros((2, 3, 5), dtype=np.float32))
        with pytest.raises(ShapeError):
            cross_entropy(logits, np.zeros((2, 4), dtype=np.int64))

    def test_gradient_is_softmax_minus_onehot(self):
        logits = Tensor(
            np.random.default_rng(2).normal(size=(3, 4)).astype(np.float32), requires_grad=True
        )
        targets = np.array([1, 0, 3])
        cross_entropy(logits, targets).backward()
        probs = softmax(Tensor(logits.data)).numpy()
        expected = probs.copy()
        expected[np.arange(3), targets] -= 1.0
        expected /= 3
        np.testing.assert_allclose(logits.grad, expected, atol=1e-5)

    def test_ignored_positions_get_zero_grad(self):
        logits = Tensor(
            np.random.default_rng(3).normal(size=(3, 4)).astype(np.float32), requires_grad=True
        )
        cross_entropy(logits, np.array([1, -100, 2])).backward()
        np.testing.assert_allclose(logits.grad[1], np.zeros(4), atol=1e-7)

    def test_3d_logits(self):
        logits = Tensor(np.random.default_rng(4).normal(size=(2, 3, 5)).astype(np.float32))
        targets = np.array([[0, 1, -100], [2, -100, 4]])
        loss = cross_entropy(logits, targets).item()
        assert np.isfinite(loss)


class TestEmbedding:
    def test_lookup_values(self):
        weight = Tensor(np.arange(12, dtype=np.float32).reshape(4, 3))
        out = embedding(weight, np.array([2, 0]))
        np.testing.assert_allclose(out.numpy(), weight.numpy()[[2, 0]])

    def test_scatter_add_gradient(self):
        weight = Tensor(np.zeros((4, 2), dtype=np.float32), requires_grad=True)
        embedding(weight, np.array([1, 1, 3])).sum().backward()
        expected = np.zeros((4, 2))
        expected[1] = 2.0
        expected[3] = 1.0
        np.testing.assert_allclose(weight.grad, expected)

    def test_2d_indices(self):
        weight = Tensor(np.random.default_rng(0).normal(size=(5, 3)).astype(np.float32))
        out = embedding(weight, np.array([[0, 1], [2, 3]]))
        assert out.shape == (2, 2, 3)

    def test_out_of_range_raises(self):
        weight = Tensor(np.zeros((4, 2), dtype=np.float32))
        with pytest.raises(ShapeError):
            embedding(weight, np.array([4]))
        with pytest.raises(ShapeError):
            embedding(weight, np.array([-1]))

    def test_float_indices_raise(self):
        weight = Tensor(np.zeros((4, 2), dtype=np.float32))
        with pytest.raises(ShapeError):
            embedding(weight, np.array([0.5]))


class TestStructuralOps:
    def test_concat_values_and_grad(self):
        a = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        b = Tensor(np.full((2, 3), 2.0, dtype=np.float32), requires_grad=True)
        out = concat([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * 2).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 3), 2.0))

    def test_concat_empty_raises(self):
        with pytest.raises(ShapeError):
            concat([])

    def test_stack_values_and_grad(self):
        a = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        b = Tensor(np.full(3, 2.0, dtype=np.float32), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.ones(3))

    def test_where_selects_and_routes_grad(self):
        cond = np.array([True, False, True])
        a = Tensor(np.full(3, 5.0, dtype=np.float32), requires_grad=True)
        b = Tensor(np.full(3, 7.0, dtype=np.float32), requires_grad=True)
        out = where(cond, a, b)
        np.testing.assert_allclose(out.numpy(), [5.0, 7.0, 5.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])
