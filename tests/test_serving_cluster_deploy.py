"""Golden rolling-deploy test: real weights through the full cluster.

A fine-tuned ZiGong is replicated across the cluster, traffic is scored
before / during / after a rolling weight deploy, and every score is
pinned against a **fresh, cache-free classifier** over the same weights:

* pre-swap traffic scores exactly with the old weights,
* post-swap traffic scores exactly with the new weights,
* the two genuinely differ (the deploy moved the model), and
* no stale :class:`~repro.nn.cache.PrefixCache` entry leaks across the
  swap — repeated prompts warm the replica caches before the deploy,
  and the post-deploy scores still match the uncached reference.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.baselines.lm import LMClassifier
from repro.config import test_config as make_test_config
from repro.core import ZiGong
from repro.data import (
    CLASSIFICATION_TEMPLATE,
    build_behavior_examples,
    deduplicate_examples,
    drop_conflicting_examples,
)
from repro.datasets import make_behavior
from repro.serving import (
    ClusterConfig,
    ClusterSupervisor,
    ScoreRequest,
    zigong_replica_factory,
)
from repro.serving.behavior_card import DEFAULT_QUESTION


@pytest.fixture(scope="module")
def deploy_setup():
    """An initially fine-tuned ZiGong plus a second finetune's state dict."""
    dataset = make_behavior(n_users=40, n_periods=4, seed=0)
    examples = drop_conflicting_examples(
        deduplicate_examples(build_behavior_examples(dataset))
    )
    base = make_test_config()
    config = dataclasses.replace(
        base, training=dataclasses.replace(base.training, epochs=3), base_lr=5e-3
    )
    zigong = ZiGong.from_examples(examples[:80], config=config)
    zigong.finetune(examples[80:100])  # LoRA-shaped weights before capture
    old_state = {k: v.copy() for k, v in zigong.model.state_dict().items()}
    zigong.finetune(examples[100:140])
    new_state = {k: v.copy() for k, v in zigong.model.state_dict().items()}
    texts = [dataset.row_text(u, dataset.n_periods - 1) for u in range(6)]
    return zigong, old_state, new_state, texts


def reference_scores(zigong, state, texts):
    """Scores from a fresh, cache-free classifier running ``state``."""
    model = type(zigong.model)(zigong.config.model, rng=zigong.config.seed)
    from repro.lora import apply_lora

    apply_lora(model, zigong.config.lora, rng=zigong.config.seed)
    model.load_state_dict(state)
    classifier = LMClassifier(model, zigong.tokenizer, prefix_cache_size=0)
    prompts = [
        CLASSIFICATION_TEMPLATE.format(sentence=t, question=DEFAULT_QUESTION)
        for t in texts
    ]
    return [float(classifier.score(p, "yes", "no")) for p in prompts]


class TestGoldenRollingDeploy:
    def test_scores_pin_to_the_weights_that_served_them(self, deploy_setup):
        zigong, old_state, new_state, texts = deploy_setup
        old_reference = reference_scores(zigong, old_state, texts)
        new_reference = reference_scores(zigong, new_state, texts)
        # The deploy must be observable at all: the finetune moved scores.
        assert any(
            abs(a - b) > 1e-9 for a, b in zip(old_reference, new_reference)
        )

        factory = zigong_replica_factory(zigong, threshold=0.5)
        cluster = ClusterSupervisor(
            factory, ClusterConfig(replicas=2, max_batch_size=4)
        )
        cluster.launch()
        # Replicas were built from the CURRENT (post-second-finetune)
        # model; roll them back to the old weights first so the deploy
        # below is a genuine old -> new transition.
        cluster.deploy(old_state)

        requests = [ScoreRequest(f"u{i}", t) for i, t in enumerate(texts)]

        # Warm every replica's prefix cache on the old weights — twice,
        # so repeated prompts genuinely hit the cache.
        pre_first = [r.score for r in cluster.serve(requests)]
        pre_second = [r.score for r in cluster.serve(requests)]
        assert pre_first == pytest.approx(old_reference, abs=1e-9)
        assert pre_second == pytest.approx(pre_first, abs=0)

        # Requests submitted before the deploy drain on the old weights.
        inflight = [cluster.submit(r) for r in requests]
        swapped = cluster.deploy(new_state)
        assert swapped == 2
        inflight_scores = [p.result(timeout=0).score for p in inflight]
        assert inflight_scores == pytest.approx(old_reference, abs=1e-9)

        # Post-swap traffic scores with the new weights — and matches the
        # cache-free reference, so no stale PrefixCache entry survived.
        post = [r.score for r in cluster.serve(requests)]
        assert post == pytest.approx(new_reference, abs=1e-9)
        assert any(abs(a - b) > 1e-9 for a, b in zip(post, pre_first))
        cluster.stop()

    def test_replica_weight_versions_advance_together(self, deploy_setup):
        zigong, old_state, new_state, _ = deploy_setup
        cluster = ClusterSupervisor(
            zigong_replica_factory(zigong), ClusterConfig(replicas=2)
        )
        cluster.launch()
        before = cluster.weight_versions()
        assert len(set(before.values())) == 1  # replicas start in lockstep
        cluster.deploy(new_state)
        after = cluster.weight_versions()
        assert len(set(after.values())) == 1
        assert after[0] == before[0] + 1
        cluster.stop()


class TestQuantizedReplicas:
    def test_int8_replicas_match_float_decisions(self, deploy_setup):
        """int8 replicas serve the same approvals as the float cluster."""
        zigong, _, _, texts = deploy_setup
        requests = [ScoreRequest(f"u{i}", t) for i, t in enumerate(texts)]

        float_cluster = ClusterSupervisor(
            zigong_replica_factory(zigong, threshold=0.5),
            ClusterConfig(replicas=2, max_batch_size=4),
        )
        float_cluster.launch()
        float_results = float_cluster.serve(requests)
        float_cluster.stop()

        quant_cluster = ClusterSupervisor(
            zigong_replica_factory(zigong, threshold=0.5, quantize="int8"),
            ClusterConfig(replicas=2, max_batch_size=4),
        )
        quant_cluster.launch()
        quant_results = quant_cluster.serve(requests)
        quant_cluster.stop()

        assert [r.approved for r in quant_results] == [
            r.approved for r in float_results
        ]
        for f, q in zip(float_results, quant_results):
            assert q.score == pytest.approx(f.score, abs=0.05)

    def test_invalid_quantize_mode_raises(self, deploy_setup):
        from repro.errors import ConfigError

        zigong = deploy_setup[0]
        with pytest.raises(ConfigError):
            zigong_replica_factory(zigong, quantize="fp4")

    def test_quantized_state_deploys_onto_quantized_replicas(self, deploy_setup):
        """stage->drain->swap works when replicas AND payload are int8."""
        from repro.serving import zigong_quantized_state

        zigong, _, _, texts = deploy_setup
        staged = zigong_quantized_state(zigong)
        assert any(
            getattr(v, "dtype", None) == "int8" or str(getattr(v, "dtype", "")) == "int8"
            for v in staged.values()
        )

        cluster = ClusterSupervisor(
            zigong_replica_factory(zigong, quantize="int8"),
            ClusterConfig(replicas=2, max_batch_size=4),
        )
        cluster.launch()
        before = cluster.weight_versions()
        swapped = cluster.deploy(staged)
        assert swapped == 2
        after = cluster.weight_versions()
        assert all(after[i] == before[i] + 1 for i in after)

        requests = [ScoreRequest(f"u{i}", t) for i, t in enumerate(texts)]
        results = cluster.serve(requests)
        assert len(results) == len(requests)
        assert all(0.0 <= r.score <= 1.0 for r in results)
        cluster.stop()
