"""Harness, parsing, report and CALM suite tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.baselines import ExpertSystemModel, MajorityClassModel, RandomGuessModel
from repro.eval import (
    CalmBenchmark,
    CreditModel,
    EvalSample,
    Prediction,
    evaluate,
    format_table,
    make_eval_samples,
    parse_answer,
    parse_choice,
)


class TestParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("yes", 1),
            ("no", 0),
            ("Yes.", 1),
            ("the answer is no", 0),
            ("definitely yes indeed", 1),
            ("maybe", None),
            ("", None),
            ("eyesore", None),  # substring must not match
        ],
    )
    def test_parse_answer(self, text, expected):
        assert parse_answer(text, "yes", "no") == expected

    def test_first_match_wins(self):
        assert parse_answer("no yes", "yes", "no") == 0

    def test_custom_answer_words(self):
        assert parse_answer("good credit", "good", "bad") == 1

    def test_identical_answers_rejected(self):
        with pytest.raises(EvaluationError):
            parse_answer("x", "yes", "yes")

    def test_parse_choice(self):
        assert parse_choice("the bracket is Medium", ("low", "medium", "high")) == "medium"
        assert parse_choice("nothing", ("low", "high")) is None
        with pytest.raises(EvaluationError):
            parse_choice("x", ())


class _FixedModel(CreditModel):
    name = "fixed"

    def __init__(self, outputs):
        self.outputs = list(outputs)
        self._i = 0

    def predict(self, sample):
        out = self.outputs[self._i % len(self.outputs)]
        self._i += 1
        return out


def _samples(labels, with_features=False):
    return [
        EvalSample(
            prompt=f"x={i} question: q ? answer:",
            label=l,
            positive_text="yes",
            negative_text="no",
            features=np.array([float(i), float(l)]) if with_features else None,
        )
        for i, l in enumerate(labels)
    ]


class TestEvaluate:
    def test_metrics_computed(self):
        samples = _samples([1, 0, 1, 0])
        model = _FixedModel(
            [Prediction(1, 0.9), Prediction(0, 0.1), Prediction(0, 0.4), Prediction(0, 0.2)]
        )
        result = evaluate(model, samples, "demo")
        assert result.accuracy == 0.75
        assert result.miss == 0.0
        assert result.ks is not None
        assert result.dataset == "demo"
        assert result.n == 4

    def test_missing_scores_disable_ks(self):
        samples = _samples([1, 0])
        model = _FixedModel([Prediction(1, None), Prediction(0, 0.3)])
        result = evaluate(model, samples)
        assert result.ks is None and result.auc is None

    def test_single_class_disables_ks(self):
        samples = _samples([1, 1])
        model = _FixedModel([Prediction(1, 0.5)])
        assert evaluate(model, samples).ks is None

    def test_empty_samples_raise(self):
        with pytest.raises(EvaluationError):
            evaluate(_FixedModel([Prediction(1)]), [])

    def test_as_row_rounding(self):
        samples = _samples([1, 0, 1])
        model = _FixedModel([Prediction(1, 0.5)])
        row = evaluate(model, samples, "d").as_row()
        assert set(row) == {"model", "dataset", "n", "acc", "f1", "miss", "ks", "auc"}


class TestBaselines:
    def test_majority(self):
        model = MajorityClassModel([1, 1, 0])
        assert model.predict(_samples([0])[0]).label == 1
        with pytest.raises(EvaluationError):
            MajorityClassModel([])

    def test_random_seeded(self):
        samples = _samples([1] * 10)
        a = [p.label for p in RandomGuessModel(seed=1).predict_many(samples)]
        b = [p.label for p in RandomGuessModel(seed=1).predict_many(samples)]
        assert a == b

    def test_random_miss_prob(self):
        samples = _samples([1] * 200)
        preds = RandomGuessModel(seed=0, miss_prob=0.5).predict_many(samples)
        misses = sum(1 for p in preds if p.label is None)
        assert 60 < misses < 140

    def test_random_invalid_probs(self):
        with pytest.raises(EvaluationError):
            RandomGuessModel(miss_prob=1.5)

    def test_expert_logistic_on_synthetic(self, german_small):
        train, test = german_small.split(test_fraction=0.3, seed=0)
        model = ExpertSystemModel.logistic(train)
        result = evaluate(model, make_eval_samples(test), "german")
        base = max(test.positive_rate, 1 - test.positive_rate)
        assert result.accuracy >= base - 0.05
        assert result.miss == 0.0
        assert result.ks is not None

    def test_expert_needs_features(self):
        model = ExpertSystemModel.logistic(__import__("repro.datasets", fromlist=["make_german"]).make_german(n=60))
        sample = EvalSample("p", 1, "yes", "no", features=None)
        with pytest.raises(EvaluationError):
            model.predict(sample)


class TestFormatTable:
    def test_alignment_and_none(self):
        table = format_table(["a", "bb"], [[1.0, None], ["xy", 2.5]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "1.000" in table
        assert "-" in lines[3]

    def test_row_width_mismatch(self):
        with pytest.raises(EvaluationError):
            format_table(["a"], [[1, 2]])

    def test_empty_headers(self):
        with pytest.raises(EvaluationError):
            format_table([], [])


class TestCalmBenchmark:
    @pytest.fixture(scope="class")
    def bench(self):
        return CalmBenchmark(
            sizes={name: 80 for name in ("german", "australia")},
            datasets=("german", "australia"),
            seed=0,
        )

    def test_tasks_built(self, bench):
        assert set(bench.tasks) == {"german", "australia"}
        task = bench.tasks["german"]
        assert len(task.train_examples) == len(task.train)
        assert len(task.eval_samples) == len(task.test)

    def test_run_produces_results_per_pair(self, bench):
        factories = {
            "majority": lambda task: MajorityClassModel(list(task.train.y)),
            "random": lambda task: RandomGuessModel(seed=0),
        }
        results = bench.run(factories)
        assert len(results) == 4
        assert {r.model for r in results} == {"majority", "random"}

    def test_table_layout(self, bench):
        factories = {"majority": lambda task: MajorityClassModel(list(task.train.y))}
        results = bench.run(factories)
        table = CalmBenchmark.table(results)
        assert "german" in table
        assert "Acc" in table and "Miss" in table

    def test_run_empty_factories(self, bench):
        with pytest.raises(EvaluationError):
            bench.run({})

    def test_invalid_test_fraction(self):
        with pytest.raises(EvaluationError):
            CalmBenchmark(test_fraction=0.0)
