"""Chaos suite for the online-learning pipeline.

Each scenario kills or corrupts the loop at a fault point and asserts
the documented recovery guarantee (``docs/online_learning.md``):

* a daemon killed mid-retrain resumes and finishes **bit-identically**
  to an uninterrupted run (checkpointed optimizer moments + data order
  + the persisted ``selected.jsonl``);
* a forced failure after the rolling deploy rolls the cluster back to
  the **exact prior weights**;
* a shadow-error storm never touches the primary serving path;
* a replica crash mid-promotion still converges on the new weights
  (the cluster's restart-applies-staged-state contract).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InjectedFault, ReplicaCrashedError
from repro.pipeline import MONITOR, PROMOTE, RETRAIN, SHADOW, PromotionGate
from repro.resilience import FaultInjector

from test_pipeline_online import (
    DRIFTED_REFERENCE,
    clone_model,
    drive,
    loop_config,
    make_pipeline,
    recording_obs,
    scenario,
    transition_phases,
)

pytestmark = pytest.mark.chaos


def drive_to(pipeline, traffic, phase, max_ticks=40, batch=8):
    i = 0
    for _ in range(max_ticks):
        pipeline.tick([traffic[(i + j) % len(traffic)] for j in range(batch)])
        i += batch
        if pipeline.phase == phase:
            return i
    raise AssertionError(f"never reached {phase} (at {pipeline.phase})")


def state_of(zigong) -> dict[str, np.ndarray]:
    return {k: np.asarray(v).copy() for k, v in zigong.model.state_dict().items()}


def assert_states_equal(a, b):
    assert sorted(a) == sorted(b)
    for key in a:
        assert np.array_equal(a[key], b[key]), f"weights differ at {key}"


class TestKillMidRetrain:
    def test_resume_is_bit_identical(self, scenario, tmp_path):
        """Killing the daemon mid-fine-tune and restarting reproduces the
        uninterrupted candidate weights exactly."""
        base, examples, traffic = scenario

        # Reference run: no faults, capture the finished candidate.
        ref = make_pipeline(base, tmp_path / "ref")
        ref.ingest(examples[48:])
        drive_to(ref, traffic, SHADOW)
        reference_candidate = np.load(tmp_path / "ref" / "round-001" / "candidate.npz")
        reference_candidate = {k: reference_candidate[k] for k in reference_candidate.files}

        # Chaos run: die right after the second mid-training checkpoint.
        chaos = make_pipeline(base, tmp_path / "chaos")
        chaos.ingest(examples[48:])
        injector = FaultInjector().fail_nth("training.checkpoint_saved", 2)
        with injector.active():
            with pytest.raises(InjectedFault):
                drive_to(chaos, traffic, SHADOW)
        assert chaos.phase == RETRAIN  # persisted mid-retrain
        assert (tmp_path / "chaos" / "round-001" / "selected.jsonl").exists()
        assert not (tmp_path / "chaos" / "round-001" / "candidate.npz").exists()

        # Restart: a fresh daemon (fresh model object, fresh cluster)
        # over the same work dir resumes the retrain from checkpoints.
        resumed = make_pipeline(base, tmp_path / "chaos")
        assert resumed.phase == RETRAIN
        assert resumed.state.resumes == 1
        resumed.tick([])  # no new traffic needed to finish the retrain
        assert resumed.phase == SHADOW

        survivor = np.load(tmp_path / "chaos" / "round-001" / "candidate.npz")
        survivor = {k: survivor[k] for k in survivor.files}
        assert_states_equal(reference_candidate, survivor)

    def test_selected_examples_survive_the_kill(self, scenario, tmp_path):
        """The influence-selected retrain set is persisted before training,
        so the resumed run trains on identical data in identical order."""
        from repro.data import load_jsonl

        base, examples, traffic = scenario
        pipeline = make_pipeline(base, tmp_path)
        pipeline.ingest(examples[48:])
        injector = FaultInjector().fail_nth("training.checkpoint_saved", 1)
        with injector.active():
            with pytest.raises(InjectedFault):
                drive_to(pipeline, traffic, SHADOW)
        before = load_jsonl(tmp_path / "round-001" / "selected.jsonl")

        resumed = make_pipeline(base, tmp_path)
        resumed.tick([])
        after = load_jsonl(tmp_path / "round-001" / "selected.jsonl")
        assert [e.prompt for e in before] == [e.prompt for e in after]
        assert resumed.phase == SHADOW


class TestRollback:
    def test_forced_gate_failure_restores_exact_prior_weights(self, scenario, tmp_path):
        base, examples, traffic = scenario
        obs = recording_obs()
        pipeline = make_pipeline(base, tmp_path, obs=obs)
        pipeline.ingest(examples[48:])
        prior = state_of(pipeline.zigong)
        probe = traffic[0]
        [before] = pipeline.cluster.serve([probe])

        # Post-deploy verification blows up: the pipeline must treat the
        # promotion as failed and roll the cluster back.
        injector = FaultInjector().fail_nth("pipeline.promote.verify", 1)
        with injector.active():
            drive(pipeline, traffic, until="rollbacks")

        assert pipeline.state.rollbacks == 1
        assert pipeline.state.promotions == 0
        assert pipeline.phase == MONITOR
        assert_states_equal(prior, state_of(pipeline.zigong))
        # The cluster serves the exact prior version again.
        [after] = pipeline.cluster.serve([probe])
        assert after.score == before.score
        assert obs.metrics.counter("pipeline.rollbacks").value == 1
        phases = transition_phases(obs)
        assert phases == [RETRAIN, SHADOW, PROMOTE, MONITOR]
        rolled = [e for e in obs.events.events() if e["kind"] == "pipeline.transition"
                  and e.get("rolled_back")]
        assert len(rolled) == 1

    def test_deploy_exception_rolls_back(self, scenario, tmp_path):
        """A failure in the rolling deploy itself (not just verification)
        triggers the same rollback path."""
        base, examples, traffic = scenario
        pipeline = make_pipeline(base, tmp_path)
        pipeline.ingest(examples[48:])
        prior = state_of(pipeline.zigong)
        injector = FaultInjector().fail_nth("pipeline.promote", 1)
        with injector.active():
            drive(pipeline, traffic, until="rollbacks")
        assert pipeline.state.rollbacks == 1
        assert_states_equal(prior, state_of(pipeline.zigong))


class TestShadowErrorStorm:
    def test_primary_serving_unaffected(self, scenario, tmp_path):
        base, examples, traffic = scenario
        obs = recording_obs()
        pipeline = make_pipeline(base, tmp_path, obs=obs)
        pipeline.ingest(examples[48:])
        drive_to(pipeline, traffic, SHADOW)

        # Every shadow evaluation now fails; live answers must not.
        injector = FaultInjector().fail_times("pipeline.shadow.score", 10_000)
        with injector.active():
            shadow_before = pipeline._shadow.n_window
            scores = pipeline.tick(traffic[:8])
            scores += pipeline.tick(traffic[8:16])
        assert len(scores) == 16
        assert all(np.isfinite(s) for s in scores)
        # Storm counted, no comparison records collected, still in shadow.
        assert pipeline._shadow.n_shadow_errors == 16
        assert pipeline._shadow.n_window == shadow_before
        assert pipeline.phase == SHADOW
        assert obs.metrics.counter("monitoring.shadow_errors").value == 16

        # Scores during the storm match the cluster's own answers.
        [direct] = pipeline.cluster.serve([traffic[0]])
        assert scores[0] == direct.score

        # Once the storm clears, the loop completes normally.
        drive(pipeline, traffic)
        assert pipeline.state.promotions == 1

    def test_storm_never_promotes_blind(self, scenario, tmp_path):
        """With the shadow permanently down, the gate can never collect
        its evidence window — the candidate is never promoted."""
        base, examples, traffic = scenario
        pipeline = make_pipeline(base, tmp_path)
        pipeline.ingest(examples[48:])
        drive_to(pipeline, traffic, SHADOW)
        injector = FaultInjector().fail_times("pipeline.shadow.score", 10_000)
        with injector.active():
            for i in range(6):
                pipeline.tick(traffic[8 * i:8 * (i + 1)])
        assert pipeline.phase == SHADOW
        assert pipeline.state.promotions == 0


class TestBreakerMidPromotion:
    def test_replica_crash_during_swap_still_converges(self, scenario, tmp_path):
        """A replica that dies mid-swap is restarted with the staged
        weights — promotion completes and verification passes."""
        base, examples, traffic = scenario
        pipeline = make_pipeline(base, tmp_path)
        pipeline.ingest(examples[48:])
        injector = FaultInjector().fail_nth(
            "cluster.deploy.swap", 1, exc=lambda msg: ReplicaCrashedError(msg)
        )
        with injector.active():
            drive(pipeline, traffic)
        assert pipeline.state.promotions == 1
        assert pipeline.state.rollbacks == 0
        assert pipeline.cluster.stats.restarts >= 1
        # Both replicas serve the same (promoted) scores.
        [a] = pipeline.cluster.serve([traffic[0]])
        [b] = pipeline.cluster.serve([traffic[0]])
        assert a.score == b.score


class TestCrashMidPromotionRestart:
    def test_restart_replays_promotion(self, scenario, tmp_path):
        """Dying between the gate decision and the deploy leaves the state
        machine in PROMOTE; a restarted daemon finishes the promotion
        from the persisted candidate."""
        base, examples, traffic = scenario
        pipeline = make_pipeline(base, tmp_path)
        pipeline.ingest(examples[48:])
        # Abort inside _promote before any deploy work happened, leaving
        # phase=PROMOTE on disk — the injector fault is our "kill".
        injector = FaultInjector().fail_nth(
            "pipeline.promote", 1, exc=lambda msg: KeyboardInterrupt(msg)
        )
        with injector.active():
            with pytest.raises(KeyboardInterrupt):
                drive(pipeline, traffic)
        # KeyboardInterrupt escapes the rollback handler (BaseException):
        # the persisted phase is PROMOTE.
        assert pipeline.state.phase == PROMOTE

        resumed = make_pipeline(base, tmp_path)
        assert resumed.phase == PROMOTE
        resumed.tick([])
        assert resumed.phase == MONITOR
        assert resumed.state.promotions == 1
