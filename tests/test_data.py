"""Instruction-data tests: templates, examples, tokenization, mixing, IO."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DataError
from repro.data import (
    CLASSIFICATION_TEMPLATE,
    QA_TEMPLATE,
    SENTIMENT_TEMPLATE,
    InstructExample,
    build_behavior_examples,
    build_classification_examples,
    build_income_examples,
    corpus_texts,
    get_template,
    hybrid_mix,
    labels_of,
    load_jsonl,
    save_jsonl,
    timestamps_of,
    tokenize_examples,
)
from repro.datasets import make_behavior, make_german, make_income
from repro.tokenizer import WordTokenizer


class TestTemplates:
    def test_classification_format(self):
        text = CLASSIFICATION_TEMPLATE.format(sentence="a=1 b=2", question="is it good")
        assert text == "a=1 b=2 question: is it good ? answer:"

    def test_sentiment_choices(self):
        assert SENTIMENT_TEMPLATE.answer_choices == ("good", "neutral", "bad")

    def test_missing_field_raises(self):
        with pytest.raises(DataError):
            QA_TEMPLATE.format(context="x")

    def test_get_template(self):
        assert get_template("qa") is QA_TEMPLATE
        with pytest.raises(DataError):
            get_template("nonexistent")


class TestExampleBuilders:
    def test_classification_examples(self, german_small):
        examples = build_classification_examples(german_small)
        assert len(examples) == len(german_small)
        ex = examples[0]
        assert ex.answer in ("good", "bad")
        assert ex.label in (0, 1)
        assert (ex.answer == "good") == (ex.label == 1)
        assert ex.meta["dataset"] == "german"
        assert "question:" in ex.prompt

    def test_behavior_examples_carry_period_timestamps(self):
        ds = make_behavior(n_users=6, n_periods=4, seed=0)
        examples = build_behavior_examples(ds)
        assert len(examples) == 24
        stamps = timestamps_of(examples)
        assert set(stamps) == {0.0, 1.0, 2.0, 3.0}

    def test_income_examples_generative(self):
        ds = make_income(n=20, seed=0)
        examples = build_income_examples(ds)
        assert len(examples) == 20
        assert examples[0].answer in ("low", "medium", "high")

    def test_labels_of(self, german_examples):
        labels = labels_of(german_examples)
        assert labels.dtype == np.int64
        assert set(np.unique(labels)) <= {0, 1}

    def test_corpus_texts_include_answers(self, german_examples):
        texts = corpus_texts(german_examples[:3])
        for text, ex in zip(texts, german_examples[:3]):
            assert text.endswith(ex.answer)


class TestTokenization:
    @pytest.fixture
    def tok(self, german_examples):
        return WordTokenizer.train(corpus_texts(german_examples))

    def test_answer_span_supervised_only(self, german_examples, tok):
        encoded = tokenize_examples(german_examples[:5], tok)
        for input_ids, labels in encoded:
            assert len(input_ids) == len(labels)
            sep_pos = input_ids.index(tok.sep_id)
            assert all(l == -100 for l in labels[: sep_pos + 1])
            assert labels[sep_pos + 1] != -100
            assert labels[-1] == tok.eos_id

    def test_truncation_guard(self, german_examples, tok):
        with pytest.raises(DataError):
            tokenize_examples(german_examples[:1], tok, max_len=4)

    def test_max_len_respected_when_safe(self, german_examples, tok):
        full = tokenize_examples(german_examples[:1], tok)[0]
        limit = len(full[0]) - 0  # no truncation needed
        encoded = tokenize_examples(german_examples[:1], tok, max_len=limit)
        assert len(encoded[0][0]) <= limit


class TestHybridMix:
    def _scores(self, n):
        return np.arange(n, dtype=np.float64)  # score == index

    def test_default_composition(self):
        examples = list(range(100))
        mixed = hybrid_mix(examples, self._scores(100), pruned_fraction=0.3, seed=0)
        assert len(mixed) == 100
        top30 = set(range(70, 100))
        assert top30 <= set(mixed)  # all top-K present
        assert len(set(mixed)) == 100  # no duplicates by default

    def test_total_override(self):
        mixed = hybrid_mix(list(range(50)), self._scores(50), total=20, seed=0)
        assert len(mixed) == 20
        assert set(range(44, 50)) <= set(mixed)  # top 30% of 20 = 6 items

    def test_pruned_fraction_one_is_pure_topk(self):
        mixed = hybrid_mix(list(range(10)), self._scores(10), total=4, pruned_fraction=1.0)
        assert set(mixed) == {6, 7, 8, 9}

    def test_pruned_fraction_zero_is_pure_random(self):
        mixed = hybrid_mix(list(range(10)), self._scores(10), total=5, pruned_fraction=0.0, seed=1)
        assert len(mixed) == 5

    def test_seeded_deterministic(self):
        a = hybrid_mix(list(range(30)), self._scores(30), seed=3)
        b = hybrid_mix(list(range(30)), self._scores(30), seed=3)
        assert a == b

    def test_allow_overlap(self):
        mixed = hybrid_mix(
            list(range(10)), self._scores(10), total=10, pruned_fraction=0.5, allow_overlap=True, seed=0
        )
        assert len(mixed) == 10  # may contain duplicates

    def test_validation(self):
        with pytest.raises(DataError):
            hybrid_mix([1, 2], np.ones(3))
        with pytest.raises(DataError):
            hybrid_mix([1, 2], np.ones(2), pruned_fraction=1.5)
        with pytest.raises(DataError):
            hybrid_mix([1, 2], np.ones(2), total=5)


class TestSerialization:
    def test_roundtrip(self, tmp_path, german_examples):
        path = tmp_path / "data.jsonl"
        count = save_jsonl(german_examples[:10], path)
        assert count == 10
        loaded = load_jsonl(path)
        assert loaded == list(german_examples[:10])

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "data.jsonl"
        save_jsonl([InstructExample("p", "a", 1)], path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_jsonl(path)) == 1

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_jsonl(tmp_path / "nope.jsonl")

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(DataError):
            load_jsonl(path)

    def test_missing_field(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"prompt": "p"}\n')
        with pytest.raises(DataError):
            load_jsonl(path)


class TestHybridMixStratified:
    def test_labels_keep_pruned_slice_balanced(self):
        examples = list(range(100))
        labels = [0] * 80 + [1] * 20
        # Scores heavily favor the majority class.
        scores = np.array([1.0] * 80 + [0.0] * 20, dtype=np.float64)
        mixed = hybrid_mix(examples, scores, total=40, pruned_fraction=1.0, labels=labels)
        minority = sum(1 for m in mixed if m >= 80)
        assert minority == 8  # 20% of 40

    def test_without_labels_majority_dominates(self):
        examples = list(range(100))
        labels = [0] * 80 + [1] * 20
        scores = np.array([1.0] * 80 + [0.0] * 20, dtype=np.float64)
        mixed = hybrid_mix(examples, scores, total=40, pruned_fraction=1.0)
        assert all(m < 80 for m in mixed)
