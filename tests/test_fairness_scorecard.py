"""Fairness metrics and scorecard-scaling tests."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import EvaluationError, ServingError
from repro.eval import FairnessReport, fairness_report
from repro.serving import ScorecardScaler


class TestFairnessReport:
    def test_parity_when_identical(self):
        y = [1, 0, 1, 0]
        pred = [1, 0, 1, 0]
        group = [0, 0, 1, 1]
        report = fairness_report(y, pred, group)
        assert report.demographic_parity_difference == 0.0
        assert report.disparate_impact_ratio == 1.0
        assert report.passes_four_fifths()

    def test_blatant_disparity(self):
        # Group A always approved, group B never.
        y = [1, 0, 1, 0]
        pred = [1, 1, 0, 0]
        group = [0, 0, 1, 1]
        report = fairness_report(y, pred, group)
        assert report.positive_rate_a == 1.0
        assert report.positive_rate_b == 0.0
        assert report.demographic_parity_difference == 1.0
        assert report.disparate_impact_ratio == 0.0
        assert not report.passes_four_fifths()

    def test_equalized_odds_hand_computed(self):
        # Group A: TPR=1, FPR=0; group B: TPR=0, FPR=1.
        y = [1, 0, 1, 0]
        pred = [1, 0, 0, 1]
        group = [0, 0, 1, 1]
        report = fairness_report(y, pred, group)
        assert report.equalized_odds_difference == 1.0

    def test_four_fifths_boundary(self):
        # rates 0.8 vs 1.0 -> ratio exactly 0.8 passes.
        y = [1] * 10
        pred = [1, 1, 1, 1, 0] + [1] * 5
        group = [0] * 5 + [1] * 5
        report = fairness_report(y, pred, group)
        assert report.disparate_impact_ratio == pytest.approx(0.8)
        assert report.passes_four_fifths()

    def test_zero_approvals_everywhere(self):
        report = fairness_report([1, 0], [0, 0], [0, 1])
        assert report.disparate_impact_ratio == 1.0  # vacuous parity

    def test_validation(self):
        with pytest.raises(EvaluationError):
            fairness_report([], [], [])
        with pytest.raises(EvaluationError):
            fairness_report([1], [1], [0])  # one group missing
        with pytest.raises(EvaluationError):
            fairness_report([2], [1], [0])
        with pytest.raises(EvaluationError):
            fairness_report([1, 0], [1], [0, 1])

    def test_on_model_output(self, fitted_zigong, german_small):
        """End-to-end: audit a fitted model's decisions by an age split."""
        from repro.eval import make_eval_samples

        samples = make_eval_samples(german_small)[:60]
        preds = [
            0 if p.label is None else p.label
            for p in fitted_zigong.classifier().predict_many(samples)
        ]
        labels = [s.label for s in samples]
        age = german_small.X[:60, 8]
        group = (age > np.median(age)).astype(int)
        report = fairness_report(labels, preds, group)
        assert 0.0 <= report.demographic_parity_difference <= 1.0


class TestMissingSupportRates:
    """Regression: a group with no positives/negatives used to report a
    silent 0.0 TPR/FPR — a fake "perfect parity" signal.  Missing support
    must surface as nan, and propagate into the odds gap."""

    def test_no_positives_in_one_group_gives_nan_tpr(self):
        # Group B is all-negative: its TPR does not exist.
        report = fairness_report([1, 0, 0, 0], [1, 0, 1, 0], [0, 0, 1, 1])
        assert report.tpr_a == 1.0
        assert report.fpr_a == 0.0
        assert math.isnan(report.tpr_b)
        assert report.fpr_b == 0.5
        assert math.isnan(report.equalized_odds_difference)

    def test_no_negatives_in_one_group_gives_nan_fpr(self):
        report = fairness_report([1, 0, 1, 1], [1, 0, 1, 0], [0, 0, 1, 1])
        assert math.isnan(report.fpr_b)
        assert math.isnan(report.equalized_odds_difference)

    def test_nan_propagation_is_order_independent(self):
        """max() under nan is order-dependent; the report must not be."""
        flipped = fairness_report([1, 1, 0, 0], [1, 0, 1, 0], [1, 1, 0, 0])
        assert math.isnan(flipped.equalized_odds_difference)

    def test_full_support_unchanged(self):
        report = fairness_report([1, 0, 1, 0], [1, 0, 0, 1], [0, 0, 1, 1])
        assert report.equalized_odds_difference == 1.0
        assert report.tpr_a == 1.0 and report.fpr_a == 0.0
        assert report.tpr_b == 0.0 and report.fpr_b == 1.0

    def test_parity_metrics_unaffected_by_missing_support(self):
        report = fairness_report([1, 1, 0, 0], [0, 0, 0, 0], [0, 0, 1, 1])
        assert report.demographic_parity_difference == 0.0
        assert report.disparate_impact_ratio == 1.0
        assert math.isnan(report.equalized_odds_difference)


class TestScorecardScaler:
    def test_base_anchor(self):
        scaler = ScorecardScaler(base_score=600, base_odds=50, pdo=20)
        p_at_base = 1.0 / 51.0  # odds 50:1 good:bad
        assert scaler.score(p_at_base) == pytest.approx(600, abs=1e-6)

    def test_pdo_doubles_odds(self):
        scaler = ScorecardScaler(base_score=600, base_odds=50, pdo=20)
        p_base = 1.0 / 51.0
        p_double = 1.0 / 101.0  # odds 100:1
        assert scaler.score(p_double) - scaler.score(p_base) == pytest.approx(20, abs=1e-6)

    def test_monotone_decreasing_in_risk(self):
        scaler = ScorecardScaler()
        scores = [scaler.score(p) for p in (0.01, 0.05, 0.2, 0.5, 0.9)]
        assert all(a >= b for a, b in zip(scores, scores[1:]))

    def test_clamped_to_range(self):
        scaler = ScorecardScaler()
        assert scaler.score(1e-9) == scaler.max_score
        assert scaler.score(1 - 1e-9) == scaler.min_score

    def test_roundtrip_inside_range(self):
        scaler = ScorecardScaler()
        for p in (0.05, 0.2, 0.5):
            points = scaler.score(p)
            if scaler.min_score < points < scaler.max_score:
                assert scaler.probability(points) == pytest.approx(p, rel=1e-6)

    def test_bands_ordered(self):
        scaler = ScorecardScaler()
        assert scaler.band(0.004) == "excellent"
        assert scaler.band(0.9) == "poor"
        ordering = ["excellent", "good", "fair", "poor"]
        bands = [scaler.band(p) for p in (0.004, 0.02, 0.5, 0.95)]
        assert [b for b in ordering if b in bands] == list(dict.fromkeys(bands))

    def test_validation(self):
        with pytest.raises(ServingError):
            ScorecardScaler(pdo=0)
        with pytest.raises(ServingError):
            ScorecardScaler(min_score=900, max_score=850)
        with pytest.raises(ServingError):
            ScorecardScaler().score(1.5)

    def test_factor_formula(self):
        scaler = ScorecardScaler(pdo=40)
        assert scaler.factor == pytest.approx(40 / math.log(2))
