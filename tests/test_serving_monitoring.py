"""Tests for PSI drift monitoring and shadow deployments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serving import (
    DriftMonitor,
    ShadowDeployment,
    population_stability_index,
)


class TestPSI:
    def test_identical_distributions_near_zero(self):
        rng = np.random.default_rng(0)
        ref = rng.random(2000)
        live = rng.random(2000)
        assert population_stability_index(ref, live) < 0.02

    def test_shifted_distribution_large(self):
        rng = np.random.default_rng(0)
        ref = rng.normal(0.3, 0.05, 2000).clip(0, 1)
        live = rng.normal(0.7, 0.05, 2000).clip(0, 1)
        assert population_stability_index(ref, live) > 0.25

    def test_symmetric_in_magnitude(self):
        """PSI(a, b) and PSI(b, a) are both large for a real shift."""
        rng = np.random.default_rng(1)
        a = rng.normal(0.3, 0.1, 1000).clip(0, 1)
        b = rng.normal(0.6, 0.1, 1000).clip(0, 1)
        assert population_stability_index(a, b) > 0.1
        assert population_stability_index(b, a) > 0.1

    def test_too_few_points_raise(self):
        with pytest.raises(ServingError):
            population_stability_index(np.ones(3), np.ones(5))
        with pytest.raises(ServingError):
            population_stability_index(np.linspace(0, 1, 50), np.array([]))

    def test_nonnegative(self):
        rng = np.random.default_rng(2)
        for _ in range(5):
            ref = rng.random(200)
            live = rng.random(50)
            assert population_stability_index(ref, live) >= 0.0


class TestDriftMonitor:
    def _reference(self, seed=0, n=500):
        return np.random.default_rng(seed).beta(2, 5, n)

    def test_stable_when_same_distribution(self):
        monitor = DriftMonitor(self._reference(), window=300)
        for s in np.random.default_rng(1).beta(2, 5, 300):
            monitor.observe(s)
        assert monitor.status() == "stable"

    def test_drift_detected_on_shift(self):
        monitor = DriftMonitor(self._reference(), window=300)
        for s in np.random.default_rng(1).beta(5, 2, 300):  # flipped shape
            monitor.observe(s)
        assert monitor.status() == "drift"
        assert monitor.psi() > 0.25

    def test_window_rolls(self):
        monitor = DriftMonitor(self._reference(), window=10)
        for s in np.linspace(0, 1, 25):
            monitor.observe(s)
        assert monitor.n_observed == 10

    def test_psi_before_observations_raises(self):
        monitor = DriftMonitor(self._reference())
        with pytest.raises(ServingError):
            monitor.psi()

    def test_validation(self):
        with pytest.raises(ServingError):
            DriftMonitor(np.ones(3))
        with pytest.raises(ServingError):
            DriftMonitor(self._reference(), window=0)


class _ScoreStub:
    def __init__(self, offset):
        self.offset = offset

    def score(self, prompt, positive, negative):
        return min(1.0, (len(prompt) % 10) / 10.0 + self.offset)


class TestShadowDeployment:
    def test_returns_primary_score(self):
        shadow = ShadowDeployment(_ScoreStub(0.0), _ScoreStub(0.5))
        value = shadow.score("abcd")
        assert value == pytest.approx(0.4)
        assert shadow.n_requests == 1

    def test_agreement_rate(self):
        shadow = ShadowDeployment(_ScoreStub(0.0), _ScoreStub(0.0))
        for i in range(10):
            shadow.score("x" * i)
        assert shadow.agreement_rate() == 1.0
        assert shadow.disagreements() == []

    def test_disagreements_found(self):
        # Primary low, shadow shifted above the 0.5 decision line.
        shadow = ShadowDeployment(_ScoreStub(0.0), _ScoreStub(0.6))
        shadow.score("ab")  # primary 0.2 -> 0 ; shadow 0.8 -> 1
        assert shadow.agreement_rate() == 0.0
        assert len(shadow.disagreements()) == 1

    def test_correlation_of_identical_models(self):
        shadow = ShadowDeployment(_ScoreStub(0.0), _ScoreStub(0.0))
        for i in range(12):
            shadow.score("y" * i)
        assert shadow.score_correlation() == pytest.approx(1.0)

    def test_errors_without_traffic(self):
        shadow = ShadowDeployment(_ScoreStub(0.0), _ScoreStub(0.0))
        with pytest.raises(ServingError):
            shadow.agreement_rate()
        with pytest.raises(ServingError):
            shadow.score_correlation()

    def test_records_are_copies(self):
        shadow = ShadowDeployment(_ScoreStub(0.0), _ScoreStub(0.0))
        shadow.score("abc")
        shadow.records().clear()
        assert shadow.n_requests == 1


# ----------------------------------------------------------------------
# Regression: tied / constant reference distributions (PSI)
# ----------------------------------------------------------------------


class TestPSITiedReferences:
    def test_identical_inputs_give_exactly_zero(self):
        """Flooring used to add unnormalized phantom mass: PSI(x, x) > 0."""
        rng = np.random.default_rng(0)
        cases = [
            rng.random(200),
            np.concatenate([np.full(120, 0.5), rng.random(80)]),  # heavy ties
            np.full(100, 0.37),  # constant
            np.repeat([0.1, 0.5, 0.9], 40),  # 3 distinct values, 10 bins
        ]
        for x in cases:
            assert population_stability_index(x, x) == 0.0

    def test_tied_reference_duplicate_edges_deduped(self):
        """A reference with few distinct values must not produce degenerate
        zero-width bins; PSI stays finite and order-of-magnitude sane."""
        ref = np.repeat([0.2, 0.5, 0.8], 50)
        live = np.repeat([0.2, 0.5, 0.8], 10)
        assert population_stability_index(ref, live) == 0.0
        shifted = np.full(30, 0.8)
        value = population_stability_index(ref, shifted)
        assert np.isfinite(value)
        assert value > 0.25  # all mass in one of three bins: real drift

    def test_constant_reference_pinned(self):
        """Pinned behavior on a constant reference: identical constant live
        scores are stable; live mass below the constant is loud drift."""
        ref = np.full(100, 0.5)
        assert population_stability_index(ref, np.full(20, 0.5)) == 0.0
        below = population_stability_index(ref, np.full(20, 0.1))
        assert below > 1.0
        assert np.isfinite(below)

    def test_permutation_invariant(self):
        rng = np.random.default_rng(3)
        ref = np.concatenate([np.full(80, 0.4), rng.random(120)])
        live = rng.permutation(ref)
        assert population_stability_index(ref, live) == pytest.approx(0.0, abs=1e-12)


# ----------------------------------------------------------------------
# Regression: shadow failures must never fail the production request
# ----------------------------------------------------------------------


class _ExplodingStub:
    def __init__(self, fail_times=None):
        self.calls = 0
        self.fail_times = fail_times

    def score(self, prompt, positive, negative):
        self.calls += 1
        if self.fail_times is None or self.calls <= self.fail_times:
            raise RuntimeError("shadow model OOM")
        return 0.9


class TestShadowErrorContainment:
    def test_shadow_exception_serves_primary(self):
        shadow = ShadowDeployment(_ScoreStub(0.0), _ExplodingStub())
        assert shadow.score("abcd") == pytest.approx(0.4)
        assert shadow.n_requests == 1
        assert shadow.n_shadow_errors == 1
        assert shadow.n_window == 0  # no half-scored comparison record

    def test_errors_counted_in_metrics(self):
        from repro.obs import Observability

        obs = Observability.create()
        shadow = ShadowDeployment(_ScoreStub(0.0), _ExplodingStub(), obs=obs)
        for i in range(5):
            shadow.score("x" * i)
        assert obs.metrics.counter("monitoring.shadow_errors").value == 5
        assert obs.metrics.counter("monitoring.shadow_requests").value == 5

    def test_recovery_resumes_recording(self):
        shadow = ShadowDeployment(_ScoreStub(0.4), _ExplodingStub(fail_times=3))
        for i in range(6):
            shadow.score("z" * i)
        assert shadow.n_shadow_errors == 3
        assert shadow.n_window == 3
        assert shadow.n_requests == 6

    def test_primary_exception_still_propagates(self):
        """Only the shadow is best-effort; a broken primary is a real outage."""
        shadow = ShadowDeployment(_ExplodingStub(), _ScoreStub(0.0))
        with pytest.raises(RuntimeError):
            shadow.score("abc")


# ----------------------------------------------------------------------
# Regression: bounded comparison window + nan correlation
# ----------------------------------------------------------------------


class TestShadowWindow:
    def test_records_bounded_by_window(self):
        shadow = ShadowDeployment(_ScoreStub(0.0), _ScoreStub(0.0), window=5)
        for i in range(12):
            shadow.score("w" * i)
        assert shadow.n_window == 5
        assert len(shadow.records()) == 5
        assert shadow.n_requests == 12  # lifetime counter unaffected

    def test_window_stats_exact_over_window(self):
        """Old disagreements age out: stats cover the window, exactly."""
        primary = _ScoreStub(0.0)
        disagreeing = _ScoreStub(0.6)
        agreeing = _ScoreStub(0.0)
        shadow = ShadowDeployment(primary, disagreeing, window=4)
        for i in range(1, 5):
            shadow.score("a" * i)  # all four disagree
        assert shadow.agreement_rate() == 0.0
        shadow.shadow = agreeing
        for i in range(1, 5):
            shadow.score("a" * i)  # four agreements push the others out
        assert shadow.agreement_rate() == 1.0
        assert shadow.disagreements() == []

    def test_window_must_be_positive(self):
        with pytest.raises(ServingError):
            ShadowDeployment(_ScoreStub(0.0), _ScoreStub(0.0), window=0)

    def test_zero_variance_correlation_is_nan(self):
        """0.0 used to read as "uncorrelated" to promotion gates; undefined
        correlation must be explicit.  Includes the length-20 constant
        stream whose std() is ~1e-17 rather than exactly zero."""

        class _Const:
            def score(self, prompt, positive, negative):
                return 0.4

        for n in (2, 5, 20):
            shadow = ShadowDeployment(_Const(), _Const(), window=64)
            for i in range(n):
                shadow.score("c" * (i + 1))
            assert np.isnan(shadow.score_correlation())

    def test_one_sided_zero_variance_is_nan(self):
        class _Const:
            def score(self, prompt, positive, negative):
                return 0.4

        shadow = ShadowDeployment(_ScoreStub(0.0), _Const(), window=64)
        for i in range(8):
            shadow.score("v" * i)
        assert np.isnan(shadow.score_correlation())
