"""Tests for PSI drift monitoring and shadow deployments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serving import (
    DriftMonitor,
    ShadowDeployment,
    population_stability_index,
)


class TestPSI:
    def test_identical_distributions_near_zero(self):
        rng = np.random.default_rng(0)
        ref = rng.random(2000)
        live = rng.random(2000)
        assert population_stability_index(ref, live) < 0.02

    def test_shifted_distribution_large(self):
        rng = np.random.default_rng(0)
        ref = rng.normal(0.3, 0.05, 2000).clip(0, 1)
        live = rng.normal(0.7, 0.05, 2000).clip(0, 1)
        assert population_stability_index(ref, live) > 0.25

    def test_symmetric_in_magnitude(self):
        """PSI(a, b) and PSI(b, a) are both large for a real shift."""
        rng = np.random.default_rng(1)
        a = rng.normal(0.3, 0.1, 1000).clip(0, 1)
        b = rng.normal(0.6, 0.1, 1000).clip(0, 1)
        assert population_stability_index(a, b) > 0.1
        assert population_stability_index(b, a) > 0.1

    def test_too_few_points_raise(self):
        with pytest.raises(ServingError):
            population_stability_index(np.ones(3), np.ones(5))
        with pytest.raises(ServingError):
            population_stability_index(np.linspace(0, 1, 50), np.array([]))

    def test_nonnegative(self):
        rng = np.random.default_rng(2)
        for _ in range(5):
            ref = rng.random(200)
            live = rng.random(50)
            assert population_stability_index(ref, live) >= 0.0


class TestDriftMonitor:
    def _reference(self, seed=0, n=500):
        return np.random.default_rng(seed).beta(2, 5, n)

    def test_stable_when_same_distribution(self):
        monitor = DriftMonitor(self._reference(), window=300)
        for s in np.random.default_rng(1).beta(2, 5, 300):
            monitor.observe(s)
        assert monitor.status() == "stable"

    def test_drift_detected_on_shift(self):
        monitor = DriftMonitor(self._reference(), window=300)
        for s in np.random.default_rng(1).beta(5, 2, 300):  # flipped shape
            monitor.observe(s)
        assert monitor.status() == "drift"
        assert monitor.psi() > 0.25

    def test_window_rolls(self):
        monitor = DriftMonitor(self._reference(), window=10)
        for s in np.linspace(0, 1, 25):
            monitor.observe(s)
        assert monitor.n_observed == 10

    def test_psi_before_observations_raises(self):
        monitor = DriftMonitor(self._reference())
        with pytest.raises(ServingError):
            monitor.psi()

    def test_validation(self):
        with pytest.raises(ServingError):
            DriftMonitor(np.ones(3))
        with pytest.raises(ServingError):
            DriftMonitor(self._reference(), window=0)


class _ScoreStub:
    def __init__(self, offset):
        self.offset = offset

    def score(self, prompt, positive, negative):
        return min(1.0, (len(prompt) % 10) / 10.0 + self.offset)


class TestShadowDeployment:
    def test_returns_primary_score(self):
        shadow = ShadowDeployment(_ScoreStub(0.0), _ScoreStub(0.5))
        value = shadow.score("abcd")
        assert value == pytest.approx(0.4)
        assert shadow.n_requests == 1

    def test_agreement_rate(self):
        shadow = ShadowDeployment(_ScoreStub(0.0), _ScoreStub(0.0))
        for i in range(10):
            shadow.score("x" * i)
        assert shadow.agreement_rate() == 1.0
        assert shadow.disagreements() == []

    def test_disagreements_found(self):
        # Primary low, shadow shifted above the 0.5 decision line.
        shadow = ShadowDeployment(_ScoreStub(0.0), _ScoreStub(0.6))
        shadow.score("ab")  # primary 0.2 -> 0 ; shadow 0.8 -> 1
        assert shadow.agreement_rate() == 0.0
        assert len(shadow.disagreements()) == 1

    def test_correlation_of_identical_models(self):
        shadow = ShadowDeployment(_ScoreStub(0.0), _ScoreStub(0.0))
        for i in range(12):
            shadow.score("y" * i)
        assert shadow.score_correlation() == pytest.approx(1.0)

    def test_errors_without_traffic(self):
        shadow = ShadowDeployment(_ScoreStub(0.0), _ScoreStub(0.0))
        with pytest.raises(ServingError):
            shadow.agreement_rate()
        with pytest.raises(ServingError):
            shadow.score_correlation()

    def test_records_are_copies(self):
        shadow = ShadowDeployment(_ScoreStub(0.0), _ScoreStub(0.0))
        shadow.score("abc")
        shadow.records().clear()
        assert shadow.n_requests == 1
