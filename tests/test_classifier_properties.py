"""Hypothesis property tests for padded batching in the classifier path.

Two invariants keep the serving engine honest:

* :func:`pad_sequences` preserves every token and only ever *adds*
  ``pad_id`` on the right, and
* :meth:`SequenceClassifier.predict_proba_sequences` on a ragged batch
  matches per-sequence :meth:`predict_proba` — padding positions must be
  invisible to the score.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.nn import ModelConfig
from repro.nn.classifier import SequenceClassifier, pad_sequences

PAD_ID = 0
VOCAB = 64
MAX_LEN = 16

# Token ids exclude the pad id so "content token" and "padding" stay
# distinguishable — the masking contract pad_sequences relies on.
token_ids = st.integers(min_value=1, max_value=VOCAB - 1)
sequence = st.lists(token_ids, min_size=1, max_size=MAX_LEN)
ragged_batch = st.lists(sequence, min_size=1, max_size=6)

_CLASSIFIER = SequenceClassifier(
    ModelConfig(
        vocab_size=VOCAB,
        d_model=32,
        n_layers=2,
        n_heads=4,
        n_kv_heads=2,
        d_ff=64,
        max_seq_len=32,
        sliding_window=16,
    ),
    rng=0,
)


class TestPadSequencesProperties:
    @given(ragged_batch)
    @settings(max_examples=60, deadline=None)
    def test_shape_is_batch_by_longest(self, sequences):
        padded = pad_sequences(sequences, pad_id=PAD_ID)
        assert padded.shape == (len(sequences), max(len(s) for s in sequences))
        assert padded.dtype == np.int64

    @given(ragged_batch)
    @settings(max_examples=60, deadline=None)
    def test_tokens_preserved_and_tail_is_padding(self, sequences):
        padded = pad_sequences(sequences, pad_id=PAD_ID)
        for row, seq in zip(padded, sequences):
            assert row[: len(seq)].tolist() == list(seq)
            assert (row[len(seq) :] == PAD_ID).all()

    @given(ragged_batch, st.integers(min_value=-5, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_pad_id_round_trips(self, sequences, pad_id):
        padded = pad_sequences(sequences, pad_id=pad_id)
        width = padded.shape[1]
        for row, seq in zip(padded, sequences):
            assert (row[len(seq) :] == pad_id).all()
            # Stripping the pad tail recovers the sequence exactly.
            assert row[: len(seq)].tolist() == list(seq)
            assert len(row) == width

    @given(sequence)
    @settings(max_examples=30, deadline=None)
    def test_single_sequence_is_identity(self, seq):
        padded = pad_sequences([seq], pad_id=PAD_ID)
        assert padded.tolist() == [list(seq)]

    def test_empty_inputs_rejected(self):
        with pytest.raises(ShapeError):
            pad_sequences([])
        with pytest.raises(ShapeError):
            pad_sequences([[1, 2], []])


class TestBatchedScoringParity:
    @given(ragged_batch)
    @settings(max_examples=25, deadline=None)
    def test_predict_proba_sequences_matches_per_sequence(self, sequences):
        batched = _CLASSIFIER.predict_proba_sequences(sequences)
        singles = np.array(
            [
                float(_CLASSIFIER.predict_proba(np.array([seq]))[0])
                for seq in sequences
            ]
        )
        assert batched.shape == (len(sequences),)
        np.testing.assert_allclose(batched, singles, rtol=1e-5, atol=1e-6)

    @given(ragged_batch)
    @settings(max_examples=25, deadline=None)
    def test_scores_are_probabilities(self, sequences):
        scores = _CLASSIFIER.predict_proba_sequences(sequences)
        assert np.isfinite(scores).all()
        assert ((scores > 0.0) & (scores < 1.0)).all()

    @given(sequence, st.integers(min_value=1, max_value=MAX_LEN))
    @settings(max_examples=25, deadline=None)
    def test_score_independent_of_batch_padding(self, seq, other_len):
        """A sequence's score does not change with its batch neighbors."""
        other = [1] * other_len
        alone = _CLASSIFIER.predict_proba_sequences([seq])[0]
        paired = _CLASSIFIER.predict_proba_sequences([seq, other])[0]
        np.testing.assert_allclose(paired, alone, rtol=1e-5, atol=1e-6)
