"""DataInfluence interface tests: DataInf parity, tokens, top-k, shims.

Covers the ISSUE-6 acceptance points: the three estimators are
interchangeable behind :class:`DataInfluence`; DataInf's closed-form
Sherman-Morrison scores match an explicit ``np.linalg.inv``
construction of the same per-layer Hessian approximation within a
pinned tolerance; token-wise attributions sum to the sequence-level
score exactly; ``k_most_influential`` orders proponents and opponents
correctly; a shared :class:`GradientStore` serves every estimator
without recomputing raw rows (and DataInf's adjusted rows live under
their own cache keys); and the deprecated ``scores()`` /
``influence_matrix()`` call shapes warn exactly once per call site.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.errors import InfluenceError
from repro.influence import (
    DataInf,
    DataInfluence,
    GradientStore,
    TracInCP,
    TracSeq,
    gradient_matrix,
    make_estimator,
    per_token_examples,
    reset_deprecation_warnings,
    row_cache_key,
    trainable_parameter_slices,
    train_set_hash,
)
from repro.lora.adapter import LoRAConfig
from repro.lora.inject import apply_lora
from repro.obs import Observability
from repro.optim import AdamW
from repro.training import CheckpointManager, Trainer, TrainingConfig

LAM = 0.05


def make_example(ids):
    return (list(ids), list(ids))


@pytest.fixture
def lora_model(tiny_model):
    """The tiny model with LoRA applied — DataInf's natural habitat."""
    apply_lora(tiny_model, LoRAConfig(rank=2, train_embeddings=False), rng=0)
    return tiny_model


@pytest.fixture
def checkpoints(lora_model, tmp_path):
    rng = np.random.default_rng(3)
    examples = [make_example(rng.integers(5, 60, size=8)) for _ in range(8)]
    manager = CheckpointManager(tmp_path / "ckpt")
    trainer = Trainer(
        lora_model,
        AdamW(lora_model.parameters(), lr=3e-3),
        config=TrainingConfig(epochs=2, batch_size=4, checkpoint_every=2),
        checkpoint_manager=manager,
    )
    trainer.train(examples)
    return manager.checkpoints()


@pytest.fixture
def sets():
    rng = np.random.default_rng(11)
    train = [make_example(rng.integers(5, 60, size=8)) for _ in range(6)]
    test = [make_example(rng.integers(5, 60, size=8)) for _ in range(3)]
    return train, test


class TestDataInfGolden:
    def test_matches_explicit_inverse(self, lora_model, checkpoints, sets):
        """Closed-form Sherman-Morrison == explicit np.linalg.inv Hessian.

        The estimator never materializes a d x d matrix; this test does,
        layer by layer, and pins the two paths together.
        """
        train, test = sets
        estimator = DataInf(lora_model, checkpoints, lam=LAM)
        scores = estimator.influence(train, test)

        last = sorted(checkpoints, key=lambda r: r.step)[-1]
        saved = lora_model.state_dict()
        try:
            CheckpointManager.restore(lora_model, last)
            g_train = gradient_matrix(lora_model, train)
            g_test = gradient_matrix(lora_model, test)
        finally:
            lora_model.load_state_dict(saved)
        expected = np.zeros((len(train), len(test)))
        for _, layer in trainable_parameter_slices(lora_model):
            g_l, v_l = g_train[:, layer], g_test[:, layer]
            d_l = g_l.shape[1]
            h_inv = np.zeros((d_l, d_l))
            for g in g_l:
                h_inv += np.linalg.inv(LAM * np.eye(d_l) + np.outer(g, g))
            h_inv /= len(train)
            expected += g_l @ h_inv @ v_l.T
        np.testing.assert_allclose(scores, expected, rtol=1e-8, atol=1e-10)

    def test_heuristic_lambda_is_positive_and_finite(self, lora_model, checkpoints, sets):
        train, test = sets
        estimator = DataInf(lora_model, checkpoints)  # per-layer heuristic
        scores = estimator.influence(train, test)
        assert np.isfinite(scores).all()
        rows = estimator._rows(train, span_name="influence.datainf.rows")
        assert all(lam > 0 for lam in estimator.layer_lambdas(rows))

    def test_self_influence_positive(self, lora_model, checkpoints, sets):
        """g^T H^{-1} g with H ~ PSD-plus-ridge must be positive."""
        train, _ = sets
        self_scores = DataInf(lora_model, checkpoints, lam=LAM).self_influence(train)
        assert self_scores.shape == (len(train),)
        assert (self_scores > 0).all()

    def test_validates_inputs(self, lora_model, checkpoints, sets):
        train, test = sets
        with pytest.raises(InfluenceError):
            DataInf(lora_model, checkpoints, lam=-1.0)
        with pytest.raises(InfluenceError):
            DataInf(lora_model, checkpoints, lam_scale=0.0)
        with pytest.raises(InfluenceError):
            DataInf(lora_model, checkpoints).influence([], test)
        with pytest.raises(InfluenceError):
            DataInf(lora_model, checkpoints).influence(train, [])


class TestTokenInfluence:
    @pytest.mark.parametrize("backend", ["tracin", "tracseq", "datainf"])
    def test_token_scores_sum_to_sequence_score(self, lora_model, checkpoints, sets, backend):
        """Per-token attribution decomposes the sequence-level score.

        The identity is exact in exact arithmetic; the pinned tolerance
        covers backward-pass roundoff reassociation only (the single-
        position variants accumulate gradients in a different order
        than the full-sequence pass).
        """
        train, test = sets
        estimator = make_estimator(backend, lora_model, checkpoints, lam=LAM)
        column = estimator.influence(train, [test[0]])[:, 0]
        attribution = estimator.token_influence(train, test[0])
        np.testing.assert_allclose(attribution.totals(), column, rtol=1e-5, atol=1e-7)

    def test_positions_cover_supervised_labels_only(self, lora_model, checkpoints, sets):
        train, _ = sets
        ids = list(range(5, 13))
        labels = [-100, -100, ids[2], -100, ids[4], ids[5], -100, ids[7]]
        attribution = DataInf(lora_model, checkpoints, lam=LAM).token_influence(
            train, (ids, labels)
        )
        assert attribution.positions == (2, 4, 5, 7)
        assert attribution.scores.shape == (len(train), 4)
        assert attribution.position_totals().shape == (4,)

    def test_variants_respect_masking_identity(self):
        ids = [5, 6, 7, 8]
        variants, positions = per_token_examples((ids, [-100, 6, -100, 8]))
        assert positions == (1, 3)
        assert variants[0] == (ids, [-100, 6, -100, -100])
        assert variants[1] == (ids, [-100, -100, -100, 8])
        with pytest.raises(InfluenceError):
            per_token_examples((ids, [-100] * 4))


class TestKMostInfluential:
    @pytest.mark.parametrize("backend", ["tracin", "tracseq", "datainf"])
    def test_proponents_and_opponents_ordering(self, lora_model, checkpoints, sets, backend):
        train, test = sets
        estimator = make_estimator(backend, lora_model, checkpoints, lam=LAM)
        matrix = estimator.influence(train, test)
        top = estimator.k_most_influential(train, test, k=3)
        bottom = estimator.k_most_influential(train, test, k=3, proponents=False)
        for j in range(len(test)):
            column = matrix[:, j]
            # Proponents: descending from the column max.
            np.testing.assert_allclose(top.scores[j], np.sort(column)[::-1][:3])
            np.testing.assert_allclose(column[top.indices[j]], top.scores[j])
            # Opponents: ascending from the column min.
            np.testing.assert_allclose(bottom.scores[j], np.sort(column)[:3])
            np.testing.assert_allclose(column[bottom.indices[j]], bottom.scores[j])

    def test_k_validation(self, lora_model, checkpoints, sets):
        train, test = sets
        estimator = DataInf(lora_model, checkpoints, lam=LAM)
        with pytest.raises(InfluenceError):
            estimator.k_most_influential(train, test, k=0)
        with pytest.raises(InfluenceError):
            estimator.k_most_influential(train, test, k=len(train) + 1)


class TestSharedStore:
    def test_estimator_swap_reuses_raw_rows(self, lora_model, checkpoints, sets):
        """A store warmed by TracInCP serves DataInf with zero new passes."""
        train, test = sets
        obs = Observability.create()
        store = GradientStore(obs=obs)
        TracInCP(lora_model, checkpoints, store=store, obs=obs).influence(train, test)
        passes = obs.metrics.snapshot()["counters"]["influence.gradient_passes"]
        DataInf(lora_model, checkpoints, lam=LAM, store=store, obs=obs).influence(train, test)
        assert obs.metrics.snapshot()["counters"]["influence.gradient_passes"] == passes

    def test_adjusted_rows_use_distinct_keys(self, lora_model, checkpoints, sets):
        """DataInf-adjusted rows never collide with raw TracIn rows."""
        train, test = sets
        store = GradientStore()
        estimator = DataInf(lora_model, checkpoints, lam=LAM, store=store)
        estimator.influence(train, test)
        step = estimator.checkpoint.step
        pkey = estimator.engine._pkey
        adjusted_key = row_cache_key(
            pkey, "datainf", estimator._config_key([])
        )
        # The raw key holds raw rows; the adjusted family lives elsewhere.
        raw_keys = {key[2] for key in store._rows}
        assert pkey in raw_keys
        assert any(key.startswith(pkey + "+datainf-") for key in raw_keys)
        assert adjusted_key != pkey
        # Raw rows at the final step match what TracInCP would read back.
        from repro.influence import example_content_hash

        raw = store.get(step, example_content_hash(train[0]), pkey)
        assert raw is not None

    def test_train_set_hash_isolates_hessians(self, lora_model, checkpoints, sets):
        """Adjusting against a different train set is a cache miss."""
        train, test = sets
        store = GradientStore()
        estimator = DataInf(lora_model, checkpoints, lam=LAM, store=store)
        full = estimator.influence(train, test)
        subset = estimator.influence(train[:3], test)
        # Same test rows, different Hessian: the cached adjusted rows
        # must not leak across train sets.
        direct = DataInf(lora_model, checkpoints, lam=LAM).influence(train[:3], test)
        np.testing.assert_allclose(subset, direct, rtol=0, atol=1e-12)
        assert not np.allclose(full[:3], subset)

    def test_row_cache_key_shapes(self):
        assert row_cache_key("p0-k8-d64") == "p0-k8-d64"
        assert row_cache_key("p0-k8-d64", "datainf") == "p0-k8-d64+datainf"
        assert (
            row_cache_key("p0-k8-d64", "datainf", "l0.05-tabc")
            == "p0-k8-d64+datainf-l0.05-tabc"
        )
        assert train_set_hash(["b", "a"]) == train_set_hash(["a", "b"])
        assert train_set_hash(["a"]) != train_set_hash(["a", "b"])


class TestEstimatorInterchangeability:
    def test_all_estimators_implement_the_interface(self, lora_model, checkpoints, sets):
        train, test = sets
        for backend in ("tracin", "tracseq", "datainf"):
            estimator = make_estimator(backend, lora_model, checkpoints, gamma=0.8, lam=LAM)
            assert isinstance(estimator, DataInfluence)
            assert estimator.estimator_name == backend
            assert estimator.influence(train, test).shape == (len(train), len(test))
            assert estimator.self_influence(train).shape == (len(train),)

    def test_unknown_estimator_rejected(self, lora_model, checkpoints):
        with pytest.raises(InfluenceError):
            make_estimator("ghost", lora_model, checkpoints)

    def test_tracin_equals_tracseq_at_gamma_one(self, lora_model, checkpoints, sets):
        train, test = sets
        store = GradientStore()
        tracin = TracInCP(lora_model, checkpoints, store=store)
        tracseq = TracSeq(lora_model, checkpoints, gamma=1.0, store=store)
        np.testing.assert_allclose(
            tracin.influence(train, test), tracseq.influence(train, test),
            rtol=0, atol=1e-12,
        )


class TestDeprecationShims:
    def test_scores_warns_once_per_call_site(self, lora_model, checkpoints, sets):
        train, test = sets
        reset_deprecation_warnings()
        tracer = TracInCP(lora_model, checkpoints)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(3):
                tracer.scores(train, test)  # one call site, three calls
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1

    def test_distinct_call_sites_each_warn(self, lora_model, checkpoints, sets):
        train, test = sets
        reset_deprecation_warnings()
        tracer = TracInCP(lora_model, checkpoints)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            tracer.influence_matrix(train, test)
            tracer.influence_matrix(train, test)  # different line: new site
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 2

    def test_shim_results_match_new_api(self, lora_model, checkpoints, sets):
        train, test = sets
        reset_deprecation_warnings()
        tracer = TracSeq(lora_model, checkpoints, gamma=0.9)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy_matrix = tracer.influence_matrix(train, test)
            legacy_scores = tracer.scores(train, test)
        np.testing.assert_allclose(legacy_matrix, tracer.influence(train, test))
        np.testing.assert_allclose(legacy_scores, tracer.influence(train, test).sum(axis=1))
