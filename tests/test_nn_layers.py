"""Layer tests: Linear, Embedding, norms, dropout, RoPE, MLPs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.nn import MLP, Dropout, Embedding, LayerNorm, Linear, RMSNorm, RotaryEmbedding, SwiGLU
from repro.tensor import Tensor


class TestLinear:
    def test_matches_numpy(self):
        layer = Linear(4, 3, rng=0)
        x = np.random.default_rng(0).normal(size=(2, 4)).astype(np.float32)
        out = layer(Tensor(x)).numpy()
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(out, expected, rtol=1e-5)

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False, rng=0)
        assert layer.bias is None
        out = layer(Tensor(np.ones((1, 4), dtype=np.float32)))
        assert out.shape == (1, 3)

    def test_batched_3d_input(self):
        layer = Linear(4, 3, rng=0)
        out = layer(Tensor(np.ones((2, 5, 4), dtype=np.float32)))
        assert out.shape == (2, 5, 3)

    def test_deterministic_init(self):
        a = Linear(4, 3, rng=7)
        b = Linear(4, 3, rng=7)
        np.testing.assert_allclose(a.weight.data, b.weight.data)


class TestEmbedding:
    def test_shape(self):
        emb = Embedding(10, 4, rng=0)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_gradient_flows_to_used_rows_only(self):
        emb = Embedding(10, 4, rng=0)
        emb(np.array([1, 3])).sum().backward()
        grad = emb.weight.grad
        assert np.abs(grad[[1, 3]]).sum() > 0
        np.testing.assert_allclose(grad[[0, 2, 4]], 0.0)

    def test_init_is_float32(self):
        emb = Embedding(10, 4, rng=0)
        assert emb.weight.data.dtype == np.float32

    def test_chunked_init_matches_single_draw_stream(self):
        """Chunked table fill consumes the exact RNG stream a single
        ``rng.normal(size=(n, dim))`` call would — seeded inits (and every
        downstream golden test) are unchanged by the float64-scratch fix."""
        ref = (
            np.random.default_rng(42)
            .normal(0.0, 0.02, size=(50, 16))
            .astype(np.float32)
        )
        emb = Embedding(50, 16, rng=np.random.default_rng(42))
        np.testing.assert_array_equal(emb.weight.data, ref)

        # Large enough that the fill spans multiple chunks (rows_per_chunk
        # bounds the float64 scratch to ~1 MiB).
        big_ref = (
            np.random.default_rng(7)
            .normal(0.0, 0.02, size=(300, 512))
            .astype(np.float32)
        )
        big = Embedding(300, 512, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(big.weight.data, big_ref)


class TestNorms:
    def test_rmsnorm_unit_rms(self):
        norm = RMSNorm(8)
        x = np.random.default_rng(0).normal(0, 5, size=(3, 8)).astype(np.float32)
        out = norm(Tensor(x)).numpy()
        rms = np.sqrt((out**2).mean(axis=-1))
        np.testing.assert_allclose(rms, np.ones(3), rtol=1e-3)

    def test_rmsnorm_scale_applied(self):
        norm = RMSNorm(4)
        norm.weight.data = np.full(4, 2.0, dtype=np.float32)
        x = np.ones((1, 4), dtype=np.float32)
        out = norm(Tensor(x)).numpy()
        np.testing.assert_allclose(out, np.full((1, 4), 2.0), rtol=1e-3)

    def test_layernorm_zero_mean_unit_var(self):
        norm = LayerNorm(16)
        x = np.random.default_rng(1).normal(3, 2, size=(4, 16)).astype(np.float32)
        out = norm(Tensor(x)).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-4)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), rtol=1e-2)

    def test_norm_gradcheck(self):
        from conftest import numeric_grad

        norm = RMSNorm(6)
        x = Tensor(np.random.default_rng(2).normal(size=(2, 6)).astype(np.float32), requires_grad=True)
        norm(x).sum().backward()

        def f():
            return float(norm(Tensor(x.data)).numpy().sum())

        np.testing.assert_allclose(x.grad, numeric_grad(f, x.data), atol=2e-2, rtol=1e-2)


class TestDropout:
    def test_eval_mode_identity(self):
        drop = Dropout(0.5, rng=0)
        drop.eval()
        x = Tensor(np.ones((4, 4), dtype=np.float32))
        np.testing.assert_allclose(drop(x).numpy(), x.numpy())

    def test_zero_p_identity_in_train(self):
        drop = Dropout(0.0)
        x = Tensor(np.ones((4, 4), dtype=np.float32))
        assert drop(x) is x

    def test_train_mode_zeroes_and_scales(self):
        drop = Dropout(0.5, rng=0)
        x = Tensor(np.ones((100, 100), dtype=np.float32))
        out = drop(x).numpy()
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)  # inverted dropout scaling

    def test_invalid_p_raises(self):
        with pytest.raises(ConfigError):
            Dropout(1.0)
        with pytest.raises(ConfigError):
            Dropout(-0.1)


class TestRotaryEmbedding:
    def test_norm_preserved(self):
        rope = RotaryEmbedding(head_dim=8, max_seq_len=16)
        x = Tensor(np.random.default_rng(0).normal(size=(1, 2, 5, 8)).astype(np.float32))
        out = rope.apply(x).numpy()
        np.testing.assert_allclose(
            np.linalg.norm(out, axis=-1), np.linalg.norm(x.numpy(), axis=-1), rtol=1e-4
        )

    def test_position_zero_identity(self):
        rope = RotaryEmbedding(head_dim=4, max_seq_len=8)
        x = Tensor(np.random.default_rng(1).normal(size=(1, 1, 1, 4)).astype(np.float32))
        out = rope.apply(x, positions=np.array([0])).numpy()
        np.testing.assert_allclose(out, x.numpy(), atol=1e-6)

    def test_relative_property(self):
        # Dot product of rotated q/k depends only on relative offset.
        rope = RotaryEmbedding(head_dim=8, max_seq_len=32)
        rng = np.random.default_rng(2)
        q = rng.normal(size=(1, 1, 1, 8)).astype(np.float32)
        k = rng.normal(size=(1, 1, 1, 8)).astype(np.float32)

        def dot_at(pq, pk):
            rq = rope.apply(Tensor(q), positions=np.array([pq])).numpy()
            rk = rope.apply(Tensor(k), positions=np.array([pk])).numpy()
            return float((rq * rk).sum())

        assert dot_at(3, 1) == pytest.approx(dot_at(10, 8), abs=1e-4)
        assert dot_at(5, 5) == pytest.approx(dot_at(12, 12), abs=1e-4)

    def test_odd_head_dim_raises(self):
        with pytest.raises(ShapeError):
            RotaryEmbedding(head_dim=5, max_seq_len=8)

    def test_position_out_of_table_raises(self):
        rope = RotaryEmbedding(head_dim=4, max_seq_len=4)
        x = Tensor(np.zeros((1, 1, 1, 4), dtype=np.float32))
        with pytest.raises(ShapeError):
            rope.apply(x, positions=np.array([4]))


class TestFeedForward:
    def test_swiglu_shapes(self):
        ffn = SwiGLU(8, 16, rng=0)
        out = ffn(Tensor(np.ones((2, 3, 8), dtype=np.float32)))
        assert out.shape == (2, 3, 8)

    def test_mlp_shapes(self):
        mlp = MLP(8, 16, rng=0)
        out = mlp(Tensor(np.ones((2, 8), dtype=np.float32)))
        assert out.shape == (2, 8)

    def test_swiglu_gradient_flows(self):
        ffn = SwiGLU(4, 8, rng=0)
        ffn(Tensor(np.ones((1, 4), dtype=np.float32))).sum().backward()
        assert all(p.grad is not None for p in ffn.parameters())
