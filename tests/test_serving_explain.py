"""Influence-as-a-service tests: the served explain round trip.

Pins the ISSUE-6 serving acceptance point: an online "why was this
applicant declined" query returns the top-k influential training
examples plus per-token scores, runs through the micro-batching engine
(so results carry latency / batch metadata like any score), emits the
``explain.*`` counters and ``serving.explain*`` spans, and lands in the
Behavior Card audit log as an :class:`ExplainAuditEntry` next to the
decision it explains.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServingError
from repro.obs import Observability
from repro.serving import (
    AuditEntry,
    BehaviorCardService,
    ExplainAuditEntry,
    ExplainConfig,
    ExplainRequest,
    ExplainResult,
    ExplainService,
)


@pytest.fixture(scope="module")
def served(explained_zigong):
    """An explain service over the shared fine-tuned-with-checkpoints model."""
    zigong, examples, checkpoints = explained_zigong
    obs = Observability.create()
    service = ExplainService.for_zigong(
        zigong, examples, checkpoints, estimator="datainf", obs=obs
    )
    behavior_text = examples[0].prompt.split(" question:")[0]
    return service, behavior_text, obs


class TestExplainRoundTrip:
    def test_returns_topk_and_token_scores(self, served):
        service, text, _ = served
        result = service.explain("applicant-1", text, k=3)
        assert isinstance(result, ExplainResult)
        assert result.estimator == "datainf"
        assert len(result.influential) == 3
        # Descending proponents, train-set indices in range, snippets attached.
        scores = [e.score for e in result.influential]
        assert scores == sorted(scores, reverse=True)
        assert all(0 <= e.index < len(service.train_examples) for e in result.influential)
        assert all(e.text for e in result.influential)
        attribution = result.token_attribution
        assert attribution is not None
        assert len(attribution.scores) == len(attribution.positions)
        assert len(attribution.tokens) == len(attribution.positions)
        assert attribution.top_tokens(1)

    def test_decision_fields_match_behavior_card(self, served):
        service, text, _ = served
        result = service.explain("applicant-2", text)
        direct = service.behavior_card.decide("applicant-2b", text)
        assert result.score == pytest.approx(direct.score)
        assert result.approved == direct.approved
        assert result.threshold == direct.threshold

    def test_engine_metadata_attached(self, served):
        """Explain traffic rides the MicroBatchEngine like score traffic."""
        service, text, _ = served
        results = service.explain_requests([
            ExplainRequest(user_id="a", behavior_text=text, k=2),
            ExplainRequest(user_id="b", behavior_text=text, k=2),
        ])
        assert [r.user_id for r in results] == ["a", "b"]
        assert all(r.latency_s >= 0 for r in results)
        assert all(r.batch_size >= 1 for r in results)

    def test_opponents_direction(self, served):
        service, text, _ = served
        pro = service.explain("p", text, k=2, proponents=True)
        con = service.explain("c", text, k=2, proponents=False)
        assert pro.influential[0].score >= con.influential[0].score

    def test_empty_text_rejected(self, served):
        service, _, _ = served
        with pytest.raises(ServingError):
            service.explain("u", "   ")


class TestExplainAudit:
    def test_query_lands_in_behavior_card_audit_log(self, served):
        service, text, _ = served
        before = len(service.behavior_card.audit_log())
        service.explain("audited-user", text, k=2)
        log = service.behavior_card.audit_log()
        # One decision entry + one explanation entry, in that order.
        new = log[before:]
        assert [type(e) for e in new] == [AuditEntry, ExplainAuditEntry]
        explanation = new[-1]
        assert explanation.user_id == "audited-user"
        assert explanation.estimator == "datainf"
        assert explanation.k == 2
        assert explanation.proponents is True
        assert len(explanation.top_indices) == 2
        assert len(explanation.top_scores) == 2
        assert explanation.approved == new[0].approved

    def test_obs_counters_and_spans(self, served):
        service, text, obs = served
        before = obs.metrics.snapshot()["counters"].get("explain.requests", 0)
        service.explain("obs-user", text)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["explain.requests"] == before + 1
        assert counters["explain.token_attributions"] >= 1
        names = set(obs.tracer.aggregates())
        assert "serving.explain" in names
        assert "serving.explain.query" in names


class TestExplainConfig:
    def test_validates_top_k(self):
        with pytest.raises(ServingError):
            ExplainConfig(top_k=0)

    def test_token_attribution_can_be_disabled(self, served):
        service, text, _ = served
        quiet = ExplainService(
            service.estimator,
            service.train_examples,
            service._encode,
            service.behavior_card,
            config=ExplainConfig(attribute_tokens=False),
        )
        result = quiet.explain("no-tokens", text, k=2)
        assert result.token_attribution is None
        assert len(result.influential) == 2

    def test_requires_training_examples(self, served):
        service, _, _ = served
        with pytest.raises(ServingError):
            ExplainService([], [], service._encode, service.behavior_card)


class TestEstimatorSwap:
    @pytest.mark.parametrize("backend", ["tracin", "tracseq"])
    def test_other_estimators_serve_identically(self, served, backend):
        """The service is written against DataInfluence, not DataInf:
        reuse the tokenized corpus and gradient store, swap the backend."""
        service, text, _ = served
        from repro.influence import make_estimator

        estimator = make_estimator(
            backend,
            service.estimator.model,
            [service.estimator.checkpoint],
            store=service.estimator.store,
        )
        alt = ExplainService(
            estimator,
            service.train_examples,
            service._encode,
            service.behavior_card,
            config=ExplainConfig(top_k=2),
        )
        result = alt.explain("swap-user", text)
        assert result.estimator == backend
        assert len(result.influential) == 2
