"""End-to-end pipeline tests (small but real)."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.config import test_config as make_test_config
from repro.core import PipelineConfig, PrunerConfig, ZiGongPipeline


@pytest.fixture(scope="module")
def pipeline_result(german_examples, tmp_path_factory):
    base = make_test_config()
    config = PipelineConfig(
        zigong=dataclasses.replace(
            base, training=dataclasses.replace(base.training, epochs=3)
        ),
        pruner=PrunerConfig(projection_dim=64),
        warmup_epochs=2,
    )
    pipeline = ZiGongPipeline(config)
    return pipeline.run(
        german_examples[:48],
        german_examples[48:56],
        checkpoint_dir=tmp_path_factory.mktemp("pipe-ckpt"),
    )


class TestPipeline:
    def test_result_fields(self, pipeline_result):
        assert pipeline_result.scores.shape == (48,)
        assert len(pipeline_result.mixed_examples) == 48
        assert pipeline_result.warmup_history.losses
        assert pipeline_result.finetune_history.losses

    def test_mix_contains_top_scored(self, pipeline_result, german_examples):
        scores = pipeline_result.scores
        top_idx = set(np.argsort(-scores)[: int(0.3 * 48)])
        mixed = pipeline_result.mixed_examples
        top_examples = [german_examples[:48][i] for i in top_idx]
        assert all(e in mixed for e in top_examples)

    def test_final_model_fine_tuned(self, pipeline_result):
        history = pipeline_result.finetune_history
        assert history.losses[-1] < history.losses[0]

    def test_final_model_answers(self, pipeline_result, german_examples):
        answer = pipeline_result.zigong.generate_answer(german_examples[0].prompt)
        assert isinstance(answer, str)

    def test_empty_train_raises(self):
        with pytest.raises(ConfigError):
            ZiGongPipeline().run([], [])

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            PipelineConfig(pruned_fraction=1.5)
        with pytest.raises(ConfigError):
            PipelineConfig(warmup_epochs=0)
