"""Hypothesis property tests for evaluation metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    accuracy,
    brier_score,
    confusion_matrix,
    f1_binary,
    ks_statistic,
    miss_rate,
    roc_auc,
    weighted_f1,
)

pairs = st.lists(
    st.tuples(st.integers(0, 1), st.sampled_from([0, 1, None])),
    min_size=1,
    max_size=40,
)

scored = st.lists(
    st.tuples(st.integers(0, 1), st.floats(0, 1, allow_nan=False)),
    min_size=4,
    max_size=40,
)


class TestMetricProperties:
    @given(pairs)
    @settings(max_examples=60, deadline=None)
    def test_accuracy_bounded(self, data):
        y = [d[0] for d in data]
        p = [d[1] for d in data]
        assert 0.0 <= accuracy(y, p) <= 1.0

    @given(pairs)
    @settings(max_examples=60, deadline=None)
    def test_accuracy_plus_errors_is_one(self, data):
        y = [d[0] for d in data]
        p = [d[1] for d in data]
        acc = accuracy(y, p)
        wrong = sum(1 for t, q in zip(y, p) if q is None or q != t)
        assert acc + wrong / len(y) == pytest.approx(1.0)

    @given(pairs)
    @settings(max_examples=60, deadline=None)
    def test_f1_bounded(self, data):
        y = [d[0] for d in data]
        p = [d[1] for d in data]
        assert 0.0 <= f1_binary(y, p) <= 1.0
        assert 0.0 <= weighted_f1(y, p) <= 1.0

    @given(pairs)
    @settings(max_examples=60, deadline=None)
    def test_perfect_predictions_maximize_everything(self, data):
        y = [d[0] for d in data]
        assert accuracy(y, y) == 1.0
        assert weighted_f1(y, y) == 1.0
        assert miss_rate(y) == 0.0

    @given(pairs)
    @settings(max_examples=60, deadline=None)
    def test_confusion_matrix_totals(self, data):
        y = [d[0] for d in data]
        p = [d[1] for d in data]
        matrix = confusion_matrix(y, p)
        assert matrix.sum() == len(y)
        assert matrix[1].sum() == sum(y)

    @given(scored)
    @settings(max_examples=60, deadline=None)
    def test_ks_invariant_to_label_consistent_relabeling(self, data):
        """KS(y, s) == KS(1-y, s): it measures separation, not direction."""
        y = [d[0] for d in data]
        s = [d[1] for d in data]
        if 0 < sum(y) < len(y):
            flipped = [1 - t for t in y]
            assert ks_statistic(y, s) == pytest.approx(ks_statistic(flipped, s))

    @given(scored)
    @settings(max_examples=60, deadline=None)
    def test_ks_bounded_by_one_minus_overlap(self, data):
        y = [d[0] for d in data]
        s = [d[1] for d in data]
        if 0 < sum(y) < len(y):
            assert 0.0 <= ks_statistic(y, s) <= 1.0

    @given(scored)
    @settings(max_examples=60, deadline=None)
    def test_auc_flip_relation(self, data):
        """AUC(1−y, s) == 1 − AUC(y, s)."""
        y = [d[0] for d in data]
        s = np.array([d[1] for d in data])
        if 0 < sum(y) < len(y):
            flipped = [1 - t for t in y]
            assert roc_auc(flipped, s) == pytest.approx(1.0 - roc_auc(y, s), abs=1e-9)

    @given(scored)
    @settings(max_examples=60, deadline=None)
    def test_brier_decomposition_bound(self, data):
        """Brier <= 1 always; <= 0.25 for the constant 0.5 forecast."""
        y = [d[0] for d in data]
        assert brier_score(y, [0.5] * len(y)) == pytest.approx(0.25)

    @given(scored)
    @settings(max_examples=40, deadline=None)
    def test_extreme_auc_forces_extreme_ks(self, data):
        """Perfect (or perfectly reversed) ranking implies KS == 1."""
        y = [d[0] for d in data]
        s = np.array([d[1] for d in data], dtype=np.float64)
        s = s + np.arange(s.size) * 1e-6  # deterministic tie-break
        if 0 < sum(y) < len(y):
            auc = roc_auc(y, s)
            if auc in (0.0, 1.0):
                assert ks_statistic(y, s) == pytest.approx(1.0)
