"""Configuration (Table 3) tests."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.config import PAPER_TABLE3, ZiGongConfig, bench_config, table3_rows
from repro.config import test_config as make_test_config


class TestZiGongConfig:
    def test_defaults_valid(self):
        ZiGongConfig()

    def test_invalid_lrs(self):
        with pytest.raises(ConfigError):
            ZiGongConfig(base_lr=0.0)
        with pytest.raises(ConfigError):
            ZiGongConfig(base_lr=1e-3, min_lr=1e-2)

    def test_with_vocab(self):
        config = make_test_config().with_vocab(321)
        assert config.model.vocab_size == 321

    def test_presets_build(self):
        for preset in (make_test_config(), bench_config()):
            assert preset.model.d_model % preset.model.n_heads == 0


class TestTable3:
    def test_paper_values_preserved(self):
        """Structural Table-3 choices must match the paper exactly."""
        config = bench_config()
        assert config.lora.rank == PAPER_TABLE3["lora_rank"] == 8
        assert config.lora.alpha == PAPER_TABLE3["lora_alpha"] == 16
        assert len(config.lora.target_modules) == 3  # {query, key, value}
        assert config.training.batch_size == PAPER_TABLE3["batch_size"] == 32
        assert config.training.grad_accum_steps == PAPER_TABLE3["grad_accumulation"] == 4

    def test_rows_cover_all_categories(self):
        rows = table3_rows(bench_config())
        categories = {row[0] for row in rows}
        assert categories == {"Base", "Architecture", "Training"}

    def test_rows_mention_silu_and_cosine(self):
        rows = table3_rows(bench_config())
        flattened = " ".join(" ".join(row) for row in rows)
        assert "SiLU" in flattened
        assert "Cosine Decay" in flattened
        assert "AdamW" in flattened

    def test_repro_column_tracks_config(self):
        config = bench_config()
        custom = dataclasses.replace(
            config, lora=dataclasses.replace(config.lora, rank=4)
        )
        rows = table3_rows(custom)
        rank_row = next(r for r in rows if r[1] == "LoRA Rank")
        assert rank_row[2] == "8"  # paper value unchanged
        assert rank_row[3] == "4"  # repro value follows config
