"""Module / Parameter system tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.nn import Linear, MistralTiny, Module, ModuleList, Parameter


class Toy(Module):
    def __init__(self):
        super().__init__()
        self.fc = Linear(4, 3, rng=0)
        self.blocks = ModuleList([Linear(3, 3, rng=1), Linear(3, 2, rng=2)])
        self.scale = Parameter(np.ones(2, dtype=np.float32))

    def forward(self, x):
        x = self.fc(x)
        for block in self.blocks:
            x = block(x)
        return x * self.scale


class TestTraversal:
    def test_named_parameters_paths(self):
        names = {name for name, _ in Toy().named_parameters()}
        assert "fc.weight" in names
        assert "fc.bias" in names
        assert "blocks.0.weight" in names
        assert "blocks.1.bias" in names
        assert "scale" in names

    def test_parameter_count(self):
        toy = Toy()
        expected = (3 * 4 + 3) + (3 * 3 + 3) + (2 * 3 + 2) + 2
        assert toy.num_parameters() == expected

    def test_trainable_only_count(self):
        toy = Toy()
        toy.fc.weight.requires_grad = False
        assert toy.num_parameters(trainable_only=True) == toy.num_parameters() - 12

    def test_modulelist_len_and_getitem(self):
        toy = Toy()
        assert len(toy.blocks) == 2
        assert isinstance(toy.blocks[0], Linear)


class TestModes:
    def test_train_eval_propagate(self):
        toy = Toy()
        toy.eval()
        assert not toy.training
        assert not toy.blocks[0].training
        toy.train()
        assert toy.blocks[1].training

    def test_zero_grad_clears_all(self):
        toy = Toy()
        x = np.random.default_rng(0).normal(size=(2, 4)).astype(np.float32)
        from repro.tensor import Tensor

        toy(Tensor(x)).sum().backward()
        assert any(p.grad is not None for p in toy.parameters())
        toy.zero_grad()
        assert all(p.grad is None for p in toy.parameters())


class TestWeightVersion:
    def test_load_state_dict_bumps(self):
        toy = Toy()
        v0 = toy.weight_version
        toy.load_state_dict(toy.state_dict())
        assert toy.weight_version == v0 + 1

    def test_manual_bump(self):
        toy = Toy()
        toy.bump_weight_version()
        toy.bump_weight_version()
        assert toy.weight_version == 2


class TestStateDict:
    def test_roundtrip(self):
        a, b = Toy(), Toy()
        b.fc.weight.data += 1.0
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(b.fc.weight.data, a.fc.weight.data)

    def test_state_dict_is_a_copy(self):
        toy = Toy()
        state = toy.state_dict()
        state["fc.weight"] += 100.0
        assert toy.fc.weight.data.max() < 50.0

    def test_strict_missing_key_raises(self):
        toy = Toy()
        state = toy.state_dict()
        del state["scale"]
        with pytest.raises(CheckpointError):
            toy.load_state_dict(state)

    def test_strict_unexpected_key_raises(self):
        toy = Toy()
        state = toy.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(CheckpointError):
            toy.load_state_dict(state)

    def test_non_strict_partial_load(self):
        toy = Toy()
        original_scale = toy.scale.data.copy()
        toy.load_state_dict({"fc.bias": np.full(3, 9.0, dtype=np.float32)}, strict=False)
        np.testing.assert_allclose(toy.fc.bias.data, np.full(3, 9.0))
        np.testing.assert_allclose(toy.scale.data, original_scale)

    def test_shape_mismatch_raises(self):
        toy = Toy()
        state = toy.state_dict()
        state["scale"] = np.zeros(5)
        with pytest.raises(CheckpointError):
            toy.load_state_dict(state)

    def test_mistral_state_dict_covers_all_blocks(self, tiny_config):
        model = MistralTiny(tiny_config, rng=0)
        keys = set(model.state_dict())
        assert any(k.startswith("blocks.0.attn") for k in keys)
        assert any(k.startswith("blocks.1.ffn") for k in keys)
        assert "tok_embed.weight" in keys
