"""P4: batched incremental decoding — sequential loop vs generate_batch.

Not a paper table; quantifies what the generation fast path buys for
CALM-style generative eval (the paper's Table-2 read-out is literally
"generate and parse the answer").  Three measurements:

* generative eval throughput: ``evaluate_generative`` driven by the
  per-example ``generate_answer`` loop vs one batched decode through
  ``generate_answer_batch`` — asserts the ISSUE-4 acceptance claim of a
  >= 3x speedup with **identical greedy outputs**;
* KV-cache step time: the preallocated ring buffer
  (:class:`~repro.nn.cache.LayerKVCache`) vs a naive
  concatenate-per-step reference cache, at long contexts where the
  O(T^2) copying of the naive scheme dominates;
* prefix-cache effect: repeat-prompt eval with hit/saved-token counters
  rendered from the obs registry into the results file.
* continuous-batching saturation: a bimodal (short/long) burst of
  requests decoded by the iteration-level scheduler vs FIFO waves
  through ``generate_batch`` — asserts the ISSUE-8 acceptance claim of
  a >= 1.5x wall-clock win with bit-identical outputs.
* int8 quantized arm: a merged+quantized copy of the tuned model is
  held to 100% Behavior-Card decision parity with the float model, a
  ~4x weight-memory reduction is measured, and the saturation workload
  asserts the ISSUE-9 acceptance claim of a >= 1.5x forced-length
  decode speedup for the fused int8 kernel over the float graph.

Run directly for a quick CI smoke: ``python bench_generation.py --smoke``.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.baselines.lm import LMClassifier
from repro.eval.generative import evaluate_generative
from repro.obs import Observability, render_registry

from conftest import save_result, train_plain

N_EVAL = 32
RING_STEPS = 1024
RING_SHAPE = (1, 2, 16)  # (batch, kv heads, head dim) of each appended token


class ConcatLayerCache:
    """The pre-ring-buffer reference: concatenate k/v on every append.

    Kept here (not in the library) purely as the benchmark baseline —
    every decode step reallocates and copies the whole retained history,
    so per-step cost grows linearly with context and total cost is
    O(T^2).  The ring buffer writes each step into a preallocated slot.
    """

    def __init__(self, window: int | None = None):
        self.window = window
        self.offset = 0
        self._k: np.ndarray | None = None
        self._v: np.ndarray | None = None

    def append(self, k: np.ndarray, v: np.ndarray):
        if self._k is None:
            self._k, self._v = k.copy(), v.copy()
        else:
            self._k = np.concatenate([self._k, k], axis=2)
            self._v = np.concatenate([self._v, v], axis=2)
        if self.window is not None and self._k.shape[2] > self.window:
            drop = self._k.shape[2] - self.window
            self._k = self._k[:, :, drop:].copy()
            self._v = self._v[:, :, drop:].copy()
            self.offset += drop
        return self._k, self._v


def _time_cache_appends(cache, steps: int) -> float:
    batch, kv, hd = RING_SHAPE
    token_k = np.ones((batch, kv, 1, hd), dtype=np.float32)
    token_v = np.ones((batch, kv, 1, hd), dtype=np.float32)
    start = time.perf_counter()
    for _ in range(steps):
        cache.append(token_k, token_v)
    return time.perf_counter() - start


def ring_vs_concat(steps: int = RING_STEPS) -> dict[str, float]:
    """Total append time (s) for ring-buffer vs concat caches."""
    from repro.nn.cache import LayerKVCache

    times = {}
    for label, window in (("unwindowed", None), ("window=256", 256)):
        times[f"ring {label}"] = _time_cache_appends(LayerKVCache(window=window), steps)
        times[f"concat {label}"] = _time_cache_appends(ConcatLayerCache(window=window), steps)
    return times


def _build_eval(n_eval: int, epochs: int = 2):
    """A quickly tuned model plus generative-eval examples and choices."""
    from repro.data import build_classification_examples
    from repro.datasets import make_german

    dataset = make_german(n=max(n_eval, 24), seed=0)
    examples = build_classification_examples(dataset)
    zigong = train_plain(examples, epochs=epochs)
    choices = tuple(sorted({e.answer for e in examples}))
    return zigong, examples[:n_eval], choices


def _quantized_copy(zigong):
    """A merged+int8 copy of a tuned ZiGong's model; the source stays float."""
    from repro.lora.inject import apply_lora, merge_lora
    from repro.nn.quant import quantize_model
    from repro.nn.transformer import MistralTiny

    config = zigong.config
    model = MistralTiny(config.model, rng=config.seed)
    if getattr(zigong, "_lora_applied", False):
        apply_lora(model, config.lora, rng=config.seed)
    model.load_state_dict({k: v.copy() for k, v in zigong.model.state_dict().items()})
    merge_lora(model)
    quantize_model(model)
    return model


def _classifiers(zigong, obs):
    """(sequential baseline, batched) classifiers over the same weights.

    The baseline gets no prefix cache so it measures the pre-PR
    per-prompt path; the batched classifier reports its counters to
    ``obs``.
    """
    sequential = LMClassifier(zigong.model, zigong.tokenizer, prefix_cache_size=0)
    batched = LMClassifier(zigong.model, zigong.tokenizer, obs=obs)
    return sequential, batched


def run_generation_benchmark(
    n_eval: int = N_EVAL, ring_steps: int = RING_STEPS, min_speedup: float = 3.0
) -> tuple[str, dict, dict]:
    obs = Observability.create()
    zigong, examples, choices = _build_eval(n_eval)
    sequential, batched = _classifiers(zigong, obs)
    prompts = [e.prompt for e in examples]

    # Output parity first: greedy decoding must be bit-identical.
    seq_texts = [sequential.generate_answer(p) for p in prompts]
    batch_texts = batched.generate_answer_batch(prompts)
    assert batch_texts == seq_texts, "batched generation diverged from sequential"

    # Forced-length decode (no stop tokens): the tuned model emits EOS
    # almost immediately, which would leave the decode loop unmeasured —
    # this section times the actual one-token-per-step path.
    from repro.nn.generation import GenerationConfig, generate, generate_batch

    decode_config = GenerationConfig(max_new_tokens=8, stop_tokens=())
    rows = [batched._prompt_ids(p) for p in prompts]
    start = time.perf_counter()
    seq_out = [generate(zigong.model, r, decode_config) for r in rows]
    seq_decode = time.perf_counter() - start
    start = time.perf_counter()
    batch_out = generate_batch(zigong.model, rows, decode_config, obs=obs)
    batch_decode = time.perf_counter() - start
    assert [list(o) for o in batch_out] == [list(o) for o in seq_out], (
        "forced-length batched decode diverged from sequential"
    )
    decode_speedup = seq_decode / batch_decode

    start = time.perf_counter()
    seq_result = evaluate_generative(sequential.generate_answer, examples, choices)
    seq_time = time.perf_counter() - start

    batched.prefix_cache.clear()
    start = time.perf_counter()
    batch_result = evaluate_generative(
        sequential.generate_answer,
        examples,
        choices,
        generate_batch_fn=batched.generate_answer_batch,
    )
    batch_time = time.perf_counter() - start
    assert (batch_result.accuracy, batch_result.miss) == (
        seq_result.accuracy,
        seq_result.miss,
    ), "batched eval changed the metrics"
    speedup = seq_time / batch_time

    # Second pass over the same prompts: the prefix cache now serves
    # every prefill from its snapshots.
    start = time.perf_counter()
    evaluate_generative(
        sequential.generate_answer, examples, choices,
        generate_batch_fn=batched.generate_answer_batch,
    )
    repeat_time = time.perf_counter() - start

    ring = ring_vs_concat(ring_steps)

    # int8 quantized arm: Behavior-Card decision parity + weight memory +
    # forced-length decode time on the fused kernel.  The >= 1.5x decode
    # floor is asserted on the saturation workload (long decodes, where
    # per-call overhead amortizes); here the short forced decode is
    # reported alongside the parity and memory checks.
    from repro.nn.quant import weight_bytes

    qmodel = _quantized_copy(zigong)
    quant = LMClassifier(qmodel, zigong.tokenizer, prefix_cache_size=0)
    quant_texts = quant.generate_answer_batch(prompts)
    text_parity = sum(q == f for q, f in zip(quant_texts, seq_texts)) / len(prompts)

    pos_text, neg_text = (choices[1], choices[0]) if len(choices) == 2 else ("yes", "no")
    float_scores = [float(s) for s in sequential.score_batch(prompts, pos_text, neg_text)]
    quant_scores = [float(s) for s in quant.score_batch(prompts, pos_text, neg_text)]
    score_parity = sum(
        (fs >= 0.5) == (qs >= 0.5) for fs, qs in zip(float_scores, quant_scores)
    ) / len(prompts)

    bytes_float = weight_bytes(zigong.model)
    bytes_int8 = weight_bytes(qmodel)
    weight_ratio = bytes_float / bytes_int8

    start = time.perf_counter()
    generate_batch(qmodel, rows, decode_config)
    quant_decode = time.perf_counter() - start

    lines = [
        f"generative eval over {len(examples)} prompts "
        f"(max_new_tokens={batched.max_new_tokens}, greedy, identical outputs)",
        "",
        f"{'mode':>32}  {'time (s)':>9}  {'speedup':>8}",
        f"{'sequential generate_answer':>32}  {seq_time:>9.3f}  {1.0:>8.2f}x",
        f"{'generate_answer_batch':>32}  {batch_time:>9.3f}  {speedup:>8.2f}x",
        f"{'repeat (prefix-cache hits)':>32}  {repeat_time:>9.3f}  "
        f"{seq_time / repeat_time:>8.2f}x",
        "",
        f"forced-length decode ({decode_config.max_new_tokens} tokens/row, "
        "no stop tokens)",
        "",
        f"{'mode':>32}  {'time (s)':>9}  {'speedup':>8}",
        f"{'sequential generate':>32}  {seq_decode:>9.3f}  {1.0:>8.2f}x",
        f"{'generate_batch':>32}  {batch_decode:>9.3f}  {decode_speedup:>8.2f}x",
        "",
        f"KV-cache append micro-benchmark ({ring_steps} single-token steps, "
        f"shape {RING_SHAPE})",
        "",
        f"{'cache':>24}  {'total (s)':>10}  {'us/step':>8}",
    ]
    for label, total in ring.items():
        lines.append(f"{label:>24}  {total:>10.4f}  {total / ring_steps * 1e6:>8.1f}")
    lines += [
        "",
        "int8 quantized model (merged LoRA, fused inference kernel)",
        "",
        f"{'check':>32}  {'value':>14}",
        f"{'weight bytes (float)':>32}  {bytes_float:>14,}",
        f"{'weight bytes (int8)':>32}  {bytes_int8:>14,}",
        f"{'weight memory reduction':>32}  {weight_ratio:>13.2f}x",
        f"{'generated-answer parity':>32}  {text_parity:>13.0%}",
        f"{'score decision parity':>32}  {score_parity:>13.0%}",
        f"{'forced decode float (s)':>32}  {batch_decode:>14.3f}",
        f"{'forced decode int8 (s)':>32}  {quant_decode:>14.3f}",
        "",
        "observability counters (repro.obs registry):",
        "",
        render_registry(obs.metrics),
    ]
    text = "\n".join(lines)

    assert text_parity == 1.0, (
        f"quantized generated answers diverged from float on "
        f"{len(prompts) - int(text_parity * len(prompts))}/{len(prompts)} prompts"
    )
    assert score_parity == 1.0, (
        f"quantized score decisions diverged from float "
        f"(parity {score_parity:.0%})"
    )
    assert weight_ratio >= 3.0, (
        f"int8 weights only {weight_ratio:.2f}x smaller than float (need >= 3x)"
    )
    assert speedup >= min_speedup, (
        f"batched generative eval only {speedup:.2f}x sequential "
        f"(need >= {min_speedup}x)"
    )
    assert decode_speedup >= min_speedup, (
        f"batched decode loop only {decode_speedup:.2f}x sequential "
        f"(need >= {min_speedup}x)"
    )
    assert ring["ring unwindowed"] < ring["concat unwindowed"], (
        "ring buffer slower than concatenate-per-step at long context"
    )
    stats = batched.prefix_cache.stats
    assert stats.hits >= len(examples), "repeat pass did not hit the prefix cache"
    assert stats.tokens_saved > 0
    metrics = {
        "eval_sequential_s": seq_time,
        "eval_batched_s": batch_time,
        "eval_repeat_s": repeat_time,
        "eval_speedup": speedup,
        "decode_sequential_s": seq_decode,
        "decode_batched_s": batch_decode,
        "decode_speedup": decode_speedup,
        "ring_append_s": ring,
        "prefix_cache_hits": stats.hits,
        "prefix_cache_tokens_saved": stats.tokens_saved,
        "quant_weight_bytes_float": bytes_float,
        "quant_weight_bytes_int8": bytes_int8,
        "quant_weight_ratio": weight_ratio,
        "quant_text_parity": text_parity,
        "quant_score_parity": score_parity,
        "quant_decode_s": quant_decode,
    }
    config = {
        "n_eval": len(examples),
        "ring_steps": ring_steps,
        "min_speedup": min_speedup,
        "forced_decode_tokens": decode_config.max_new_tokens,
    }
    return text, metrics, config


def test_batched_generation_speedup():
    save_result("generation", *run_generation_benchmark())


SAT_POOL = 96
SAT_REQUESTS = 32
SAT_CAP = 8


def _saturation_workload(model, config, pool_size: int, n_requests: int):
    """A deterministic bimodal request mix plus its expected outputs.

    Greedy decoding with a large stop set gives genuinely ragged
    generation lengths (sampling would not: every row shares the same
    per-row RNG stream, so sampled lengths cluster).  A sequential
    ``generate`` pass over a prompt pool both measures each prompt's
    natural length and doubles as the parity reference; the workload
    then interleaves short requests (<= 8 tokens) with long stragglers
    (>= 32 tokens) so every FIFO wave of ``SAT_CAP`` is pinned by a
    couple of slow rows while the continuous scheduler backfills the
    retired slots.
    """
    from repro.nn.generation import generate

    rng = np.random.default_rng(0)
    pool = [
        rng.integers(64, model.config.vocab_size, size=int(rng.integers(4, 13)))
        for _ in range(pool_size)
    ]
    reference = [generate(model, p, config) for p in pool]
    lengths = [len(out) for out in reference]
    shorts = [i for i, n in enumerate(lengths) if n <= 8]
    longs = [i for i, n in enumerate(lengths) if n >= 32]
    assert shorts and longs, "pool produced no short/long split; retune the stop set"

    selected: list[int] = []
    li = si = 0
    max_longs = min(n_requests // 4, len(longs))
    for k in range(n_requests):
        if k % 4 == 3 and li < max_longs:
            selected.append(longs[li])
            li += 1
        else:
            selected.append(shorts[si % len(shorts)])
            si += 1
    prompts = [pool[i] for i in selected]
    expected = [list(reference[i]) for i in selected]
    return prompts, expected, lengths


def _wave_baseline(model, prompts, config, cap: int) -> list[list[int]]:
    """FIFO admission in waves of ``cap``: the pre-scheduler serving path."""
    from repro.nn.generation import generate_batch

    out: list[list[int]] = []
    for i in range(0, len(prompts), cap):
        out.extend(list(row) for row in generate_batch(model, prompts[i : i + cap], config))
    return out


def run_saturation_benchmark(
    n_requests: int = SAT_REQUESTS,
    pool_size: int = SAT_POOL,
    cap: int = SAT_CAP,
    trials: int = 3,
    min_speedup: float = 1.5,
    min_quant_speedup: float = 1.5,
) -> tuple[str, dict, dict]:
    """Continuous batching vs wave-batched FIFO on a bimodal burst."""
    from repro.nn import AdmissionPolicy, generate_continuous
    from repro.nn.generation import GenerationConfig
    from repro.nn.quant import quantize_model
    from repro.nn.transformer import MistralTiny, ModelConfig

    model = MistralTiny(
        ModelConfig(
            vocab_size=128, d_model=64, n_layers=2, n_heads=4, n_kv_heads=2,
            d_ff=128, max_seq_len=64, sliding_window=32,
        ),
        rng=0,
    )
    # Tokens below 64 terminate a row, so greedy decodes stop at
    # prompt-dependent ragged lengths instead of all running to the cap.
    config = GenerationConfig(max_new_tokens=48, stop_tokens=tuple(range(64)))
    prompts, expected, pool_lengths = _saturation_workload(
        model, config, pool_size, n_requests
    )
    policy = AdmissionPolicy(max_live_rows=cap, max_prefills_per_step=max(1, cap // 2))

    obs = Observability.create()
    base_times, cont_times = [], []
    for _ in range(trials):
        start = time.perf_counter()
        base_out = _wave_baseline(model, prompts, config, cap)
        base_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        cont_out = generate_continuous(model, prompts, config, policy=policy, obs=obs)
        cont_times.append(time.perf_counter() - start)
    assert base_out == expected, "wave baseline diverged from sequential generate"
    assert cont_out == expected, "continuous decode diverged from sequential generate"

    # Trickle arm: Poisson inter-arrival gaps in decode-step units.
    # The wave baseline has no decode-step clock to pace arrivals
    # against, so this arm is parity-checked and reported rather than
    # held to the speedup floor — trickle admission means many small
    # prefill cohorts, the regime where backfilling buys the least.
    gaps = np.random.default_rng(1).poisson(lam=2.0, size=n_requests)
    arrivals = [int(step) for step in np.cumsum(gaps)]
    start = time.perf_counter()
    poisson_out = generate_continuous(
        model, prompts, config, arrivals=arrivals, policy=policy, obs=obs
    )
    poisson_s = time.perf_counter() - start
    assert poisson_out == expected, (
        "Poisson-arrival decode diverged from sequential generate"
    )

    # Quantized arm: forced-length decode (no stop tokens) so the float
    # and int8 models do identical work per step regardless of which
    # tokens they emit — isolating kernel speed from stop-token luck.
    # Entry-point parity is asserted on the quantized model itself: the
    # scheduler and the wave baseline share the fused kernel bit-for-bit.
    qmodel = MistralTiny(model.config, rng=0)
    qmodel.load_state_dict(model.state_dict())
    quantize_model(qmodel)
    forced = GenerationConfig(max_new_tokens=32, stop_tokens=())
    float_forced_times, quant_forced_times = [], []
    for _ in range(trials):
        start = time.perf_counter()
        float_forced = generate_continuous(model, prompts, forced, policy=policy, obs=obs)
        float_forced_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        quant_forced = generate_continuous(qmodel, prompts, forced, policy=policy, obs=obs)
        quant_forced_times.append(time.perf_counter() - start)
    quant_waves = _wave_baseline(qmodel, prompts, forced, cap)
    assert quant_forced == quant_waves, (
        "quantized continuous decode diverged from quantized wave baseline"
    )
    assert all(len(row) == forced.max_new_tokens for row in float_forced)
    float_forced_s, quant_forced_s = min(float_forced_times), min(quant_forced_times)
    quant_speedup = float_forced_s / quant_forced_s

    base_s, cont_s = min(base_times), min(cont_times)
    speedup = base_s / cont_s
    n_short = sum(len(out) <= 8 for out in expected)
    n_long = sum(len(out) >= 32 for out in expected)
    lines = [
        f"continuous-batching saturation: {n_requests} requests "
        f"({n_short} short / {n_long} long, burst arrival), "
        f"max_live_rows={cap}, greedy, identical outputs",
        f"pool: {pool_size} prompts, generation lengths "
        f"{min(pool_lengths)}..{max(pool_lengths)} tokens",
        "",
        f"{'mode':>32}  {'time (s)':>9}  {'speedup':>8}",
        f"{'FIFO waves (generate_batch)':>32}  {base_s:>9.3f}  {1.0:>8.2f}x",
        f"{'continuous scheduler':>32}  {cont_s:>9.3f}  {speedup:>8.2f}x",
        f"{'continuous, Poisson arrivals':>32}  {poisson_s:>9.3f}  "
        f"{base_s / poisson_s:>8.2f}x",
        "",
        f"int8 fused-kernel decode (continuous scheduler, forced "
        f"{forced.max_new_tokens} tokens/row)",
        "",
        f"{'mode':>32}  {'time (s)':>9}  {'speedup':>8}",
        f"{'float autograd graph':>32}  {float_forced_s:>9.3f}  {1.0:>8.2f}x",
        f"{'int8 fused kernel':>32}  {quant_forced_s:>9.3f}  {quant_speedup:>8.2f}x",
        "",
        "observability counters (repro.obs registry):",
        "",
        render_registry(obs.metrics),
    ]
    text = "\n".join(lines)

    assert speedup >= min_speedup, (
        f"continuous batching only {speedup:.2f}x the wave baseline "
        f"(need >= {min_speedup}x)"
    )
    assert quant_speedup >= min_quant_speedup, (
        f"int8 fused kernel only {quant_speedup:.2f}x the float graph "
        f"(need >= {min_quant_speedup}x)"
    )
    metrics = {
        "wave_baseline_s": base_s,
        "continuous_s": cont_s,
        "continuous_speedup": speedup,
        "poisson_s": poisson_s,
        "poisson_speedup": base_s / poisson_s,
        "quant_float_forced_s": float_forced_s,
        "quant_int8_forced_s": quant_forced_s,
        "quant_decode_speedup": quant_speedup,
        "n_short": n_short,
        "n_long": n_long,
    }
    config = {
        "n_requests": n_requests,
        "pool_size": pool_size,
        "max_live_rows": cap,
        "trials": trials,
        "min_speedup": min_speedup,
        "min_quant_speedup": min_quant_speedup,
        "forced_decode_tokens": forced.max_new_tokens,
    }
    return text, metrics, config


def test_continuous_saturation_speedup():
    save_result("generation_saturation", *run_saturation_benchmark())


def smoke(n_eval: int = 16, ring_steps: int = 512) -> None:
    """Small everything: exercises the full path in a few seconds.

    The speedup floor is relaxed to 2x at this batch size — the 3x
    acceptance claim is asserted at the full N_EVAL batch.  512 ring
    steps (not fewer) so the concat baseline's O(T^2) copying dominates
    timer noise; at 128 steps the ring-vs-concat assert was flaky.
    """
    text, _, _ = run_generation_benchmark(
        n_eval=n_eval, ring_steps=ring_steps, min_speedup=2.0
    )
    print(text)
    print()
    sat_text, _, _ = run_saturation_benchmark(
        trials=2, min_speedup=1.2, min_quant_speedup=1.2
    )
    print(sat_text)
    print("\ngeneration smoke OK")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fast run (CI): parity + speedup + ring-buffer asserts",
    )
    parser.add_argument("--n-eval", type=int, default=N_EVAL)
    parser.add_argument("--ring-steps", type=int, default=RING_STEPS)
    args = parser.parse_args(argv)
    if args.smoke:
        smoke()
    else:
        save_result("generation", *run_generation_benchmark(args.n_eval, args.ring_steps))
        save_result("generation_saturation", *run_saturation_benchmark())
    return 0


if __name__ == "__main__":
    sys.exit(main())
