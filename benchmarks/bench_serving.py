"""P2: serving-engine throughput — micro-batching and replica scaling.

Not a paper table; quantifies what the Behavior Card serving tier buys
(DESIGN.md; the paper's deployment surface).  Two effects are measured:

* **Micro-batching** — one padded forward pass over a batch amortizes
  the per-call overhead of the numpy substrate (>= 3x single-request
  at batch size >= 8; the ISSUE-1 acceptance claim).
* **Replica scaling** — on a stall-bound saturation workload (each
  batch carries a simulated feature-store/RPC stall, the dominant cost
  in real credit-scoring deployments) a multi-replica cluster overlaps
  the stalls that a single engine must serialize.  The ISSUE-7
  acceptance claim: >= 2.5x aggregate throughput at 4 replicas.
  A compute-bound arm (no stall) is reported alongside without an
  assertion — with every replica sharing one Python process on this
  box, pure-compute scaling is honest-to-goodness flat.

``BENCH_CLUSTER_REPLICAS`` (comma-separated, default ``1,2,4``) bounds
the replica sweep so CI smoke runs stay cheap.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.serving import (
    BehaviorCardConfig,
    BehaviorCardService,
    ClusterConfig,
    ClusterSupervisor,
    EngineConfig,
    MicroBatchEngine,
    ReplicaApp,
    ScoreRequest,
    zigong_replica_factory,
)

from conftest import RESULTS_DIR, save_result, synthetic_traffic, train_plain

N_REQUESTS = 64
BATCH_SIZES = (8, 16)

CLUSTER_REQUESTS = 96
CLUSTER_BATCH = 8
STALL_S = 0.05  # simulated per-batch feature-store / RPC stall
REPLICA_SWEEP = tuple(
    int(n) for n in os.environ.get("BENCH_CLUSTER_REPLICAS", "1,2,4").split(",")
)


@pytest.fixture(scope="module")
def zigong():
    """A quickly fine-tuned operational model (scores are irrelevant here)."""
    from repro.data import build_behavior_examples
    from repro.datasets import make_behavior

    examples = build_behavior_examples(make_behavior(n_users=24, n_periods=2, seed=0))
    return train_plain(examples, epochs=2)


@pytest.fixture(scope="module")
def classifier(zigong):
    return zigong.classifier()


@pytest.fixture(scope="module")
def traffic():
    return [
        ScoreRequest(user_id, text)
        for user_id, text in synthetic_traffic(N_REQUESTS)
    ]


def _requests_per_second(fn, n_requests: int) -> float:
    start = time.perf_counter()
    fn()
    return n_requests / (time.perf_counter() - start)


def _single_loop_rps(classifier, traffic) -> float:
    service = BehaviorCardService(classifier, BehaviorCardConfig(cache_size=4096))

    def run():
        for request in traffic:
            service.decide(request.user_id, request.behavior_text)

    return _requests_per_second(run, len(traffic))


def _batched_rps(classifier, traffic, max_batch_size: int) -> float:
    service = BehaviorCardService(
        classifier,
        BehaviorCardConfig(cache_size=4096, max_batch_size=max_batch_size,
                           queue_capacity=max(64, len(traffic))),
    )
    return _requests_per_second(
        lambda: service.score_requests(traffic), len(traffic)
    )


def test_micro_batching_throughput(benchmark, classifier, traffic):
    single_rps = _single_loop_rps(classifier, traffic)
    batched_rps = {b: _batched_rps(classifier, traffic, b) for b in BATCH_SIZES}

    benchmark(lambda: _batched_rps(classifier, traffic, BATCH_SIZES[0]))
    benchmark.extra_info["requests_per_call"] = len(traffic)

    lines = [
        f"serving throughput on {len(traffic)} synthetic requests (distinct texts)",
        "",
        f"{'mode':>24}  {'req/s':>10}  {'speedup':>8}",
        f"{'single-request loop':>24}  {single_rps:>10.1f}  {1.0:>8.2f}x",
    ]
    for batch_size, rps in batched_rps.items():
        lines.append(
            f"{f'micro-batch (B={batch_size})':>24}  {rps:>10.1f}  "
            f"{rps / single_rps:>8.2f}x"
        )
    save_result("serving", "\n".join(lines))

    # The acceptance claim: batching amortizes per-request overhead >= 3x.
    for batch_size, rps in batched_rps.items():
        assert rps >= 3.0 * single_rps, (
            f"micro-batch B={batch_size} only {rps / single_rps:.2f}x "
            f"single-request throughput"
        )


def test_engine_accounting_under_load(classifier, traffic):
    """Batched traffic leaves the same audit/stats trail as sequential."""
    service = BehaviorCardService(
        classifier,
        BehaviorCardConfig(cache_size=4096, max_batch_size=8,
                           queue_capacity=len(traffic)),
    )
    results = service.score_requests(traffic)
    assert len(results) == len(traffic)
    assert service.stats.requests == len(traffic)
    assert len(service.audit_log()) == len(traffic)
    stats = service.engine.stats
    assert stats.completed == len(traffic)
    assert stats.batches == -(-len(traffic) // 8)  # ceil division
    assert stats.mean_batch_size == pytest.approx(8.0)


# ----------------------------------------------------------------------
# Replica scaling (ISSUE-7): cluster vs single engine under saturation
# ----------------------------------------------------------------------

CLUSTER_MARKER = "--- cluster replica scaling ---"


def _factory(zigong, stall_s: float = 0.0):
    """Replica factory over the real model, with an optional I/O stall."""
    base = zigong_replica_factory(zigong)

    def factory(replica_id: int) -> ReplicaApp:
        app = base(replica_id)
        if stall_s == 0.0:
            return app

        def batch_fn(requests):
            time.sleep(stall_s)  # feature-store / RPC round trip
            return app.batch_fn(requests)

        return ReplicaApp(
            batch_fn=batch_fn,
            swap_weights=app.swap_weights,
            weight_version=app.weight_version,
            ping=app.ping,
        )

    return factory


def _single_engine_rps(factory, traffic) -> float:
    app = factory(0)
    engine = MicroBatchEngine(
        batch_fn=app.batch_fn,
        config=EngineConfig(
            max_batch_size=CLUSTER_BATCH, queue_capacity=len(traffic) + 8
        ),
    )
    engine.start()
    start = time.perf_counter()
    pendings = [engine.submit(r) for r in traffic]
    for p in pendings:
        p.result(timeout=120.0)
    elapsed = time.perf_counter() - start
    engine.stop(drain=False)
    return len(traffic) / elapsed


def _cluster_rps(factory, traffic, replicas: int) -> float:
    cluster = ClusterSupervisor(
        factory,
        ClusterConfig(
            replicas=replicas,
            max_batch_size=CLUSTER_BATCH,
            queue_capacity=len(traffic) + 8,
        ),
    )
    cluster.start()
    start = time.perf_counter()
    pendings = [cluster.submit(r) for r in traffic]
    for p in pendings:
        p.result(timeout=120.0)
    elapsed = time.perf_counter() - start
    cluster.stop()
    return len(traffic) / elapsed


def _append_cluster_section(lines) -> None:
    """Replace the cluster section of serving.txt, keep the batching one."""
    path = RESULTS_DIR / "serving.txt"
    head = ""
    if path.exists():
        head = path.read_text().split(CLUSTER_MARKER)[0].rstrip() + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    section = "\n".join([CLUSTER_MARKER, *lines])
    path.write_text(head + "\n" + section + "\n")
    print()
    print(section)


def test_cluster_replica_scaling(zigong):
    traffic = [
        ScoreRequest(user_id, text)
        for user_id, text in synthetic_traffic(CLUSTER_REQUESTS)
    ]
    stalled = _factory(zigong, STALL_S)
    single_rps = _single_engine_rps(stalled, traffic)
    cluster_rps = {n: _cluster_rps(stalled, traffic, n) for n in REPLICA_SWEEP}

    # Compute-bound control arm: same sweep top-end, no stall.  All
    # replicas share one interpreter, so this is expected ~flat.
    compute_single = _single_engine_rps(_factory(zigong), traffic)
    compute_top = _cluster_rps(_factory(zigong), traffic, max(REPLICA_SWEEP))

    lines = [
        f"saturation workload: {CLUSTER_REQUESTS} requests, batch {CLUSTER_BATCH}, "
        f"{STALL_S * 1000:.0f}ms simulated I/O stall per batch",
        "",
        f"{'mode':>24}  {'req/s':>10}  {'speedup':>8}",
        f"{'single engine':>24}  {single_rps:>10.1f}  {1.0:>8.2f}x",
    ]
    for n, rps in sorted(cluster_rps.items()):
        lines.append(
            f"{f'cluster ({n} replicas)':>24}  {rps:>10.1f}  {rps / single_rps:>8.2f}x"
        )
    lines += [
        "",
        "compute-bound control (no stall, shared interpreter):",
        f"{'single engine':>24}  {compute_single:>10.1f}  {1.0:>8.2f}x",
        f"{f'cluster ({max(REPLICA_SWEEP)} replicas)':>24}  {compute_top:>10.1f}  "
        f"{compute_top / compute_single:>8.2f}x",
    ]
    _append_cluster_section(lines)

    # The ISSUE-7 acceptance claim, asserted only when the sweep runs
    # the full 4-replica configuration (CI smoke runs a shorter sweep).
    if 4 in REPLICA_SWEEP:
        assert cluster_rps[4] >= 2.5 * single_rps, (
            f"4-replica cluster only {cluster_rps[4] / single_rps:.2f}x "
            f"single-engine throughput"
        )
