"""P2: serving-engine throughput — single-request loop vs micro-batches.

Not a paper table; quantifies what the Behavior Card service's
micro-batching engine buys (DESIGN.md; the paper's deployment surface).
One padded forward pass over a batch amortizes the per-call overhead of
the numpy substrate, so requests/second should scale well past the
single-request loop — the same effect production stacks (Xinference,
vLLM) rely on.  Asserts the ISSUE-1 acceptance claim: micro-batched
throughput >= 3x single-request at batch size >= 8.
"""

from __future__ import annotations

import time

import pytest

from repro.serving import BehaviorCardConfig, BehaviorCardService, ScoreRequest

from conftest import save_result, synthetic_traffic, train_plain

N_REQUESTS = 64
BATCH_SIZES = (8, 16)


@pytest.fixture(scope="module")
def classifier():
    """A quickly fine-tuned operational model (scores are irrelevant here)."""
    from repro.data import build_behavior_examples
    from repro.datasets import make_behavior

    examples = build_behavior_examples(make_behavior(n_users=24, n_periods=2, seed=0))
    return train_plain(examples, epochs=2).classifier()


@pytest.fixture(scope="module")
def traffic():
    return [
        ScoreRequest(user_id, text)
        for user_id, text in synthetic_traffic(N_REQUESTS)
    ]


def _requests_per_second(fn, n_requests: int) -> float:
    start = time.perf_counter()
    fn()
    return n_requests / (time.perf_counter() - start)


def _single_loop_rps(classifier, traffic) -> float:
    service = BehaviorCardService(classifier, BehaviorCardConfig(cache_size=4096))

    def run():
        for request in traffic:
            service.decide(request.user_id, request.behavior_text)

    return _requests_per_second(run, len(traffic))


def _batched_rps(classifier, traffic, max_batch_size: int) -> float:
    service = BehaviorCardService(
        classifier,
        BehaviorCardConfig(cache_size=4096, max_batch_size=max_batch_size,
                           queue_capacity=max(64, len(traffic))),
    )
    return _requests_per_second(
        lambda: service.score_requests(traffic), len(traffic)
    )


def test_micro_batching_throughput(benchmark, classifier, traffic):
    single_rps = _single_loop_rps(classifier, traffic)
    batched_rps = {b: _batched_rps(classifier, traffic, b) for b in BATCH_SIZES}

    benchmark(lambda: _batched_rps(classifier, traffic, BATCH_SIZES[0]))
    benchmark.extra_info["requests_per_call"] = len(traffic)

    lines = [
        f"serving throughput on {len(traffic)} synthetic requests (distinct texts)",
        "",
        f"{'mode':>24}  {'req/s':>10}  {'speedup':>8}",
        f"{'single-request loop':>24}  {single_rps:>10.1f}  {1.0:>8.2f}x",
    ]
    for batch_size, rps in batched_rps.items():
        lines.append(
            f"{f'micro-batch (B={batch_size})':>24}  {rps:>10.1f}  "
            f"{rps / single_rps:>8.2f}x"
        )
    save_result("serving", "\n".join(lines))

    # The acceptance claim: batching amortizes per-request overhead >= 3x.
    for batch_size, rps in batched_rps.items():
        assert rps >= 3.0 * single_rps, (
            f"micro-batch B={batch_size} only {rps / single_rps:.2f}x "
            f"single-request throughput"
        )


def test_engine_accounting_under_load(classifier, traffic):
    """Batched traffic leaves the same audit/stats trail as sequential."""
    service = BehaviorCardService(
        classifier,
        BehaviorCardConfig(cache_size=4096, max_batch_size=8,
                           queue_capacity=len(traffic)),
    )
    results = service.score_requests(traffic)
    assert len(results) == len(traffic)
    assert service.stats.requests == len(traffic)
    assert len(service.audit_log()) == len(traffic)
    stats = service.engine.stats
    assert stats.completed == len(traffic)
    assert stats.batches == -(-len(traffic) // 8)  # ceil division
    assert stats.mean_batch_size == pytest.approx(8.0)
