"""Shared benchmark infrastructure.

Each ``bench_*.py`` file regenerates one table or figure of the paper.
Model training happens in session-scoped fixtures/helpers so the
``pytest-benchmark`` timer measures the interesting stage; the rendered
tables are printed and written to ``benchmarks/results/``.
"""

from __future__ import annotations

import dataclasses
import json
import subprocess
from pathlib import Path

import pytest

from repro.config import test_config as make_test_config
from repro.core import PipelineConfig, PrunerConfig, ZiGong, ZiGongPipeline
from repro.data import InstructExample
from repro.eval import EvalSample

RESULTS_DIR = Path(__file__).parent / "results"
SEED = 0


def _git_rev() -> str | None:
    """Short commit hash of the repo, or None outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def save_result(name: str, text: str, metrics: dict | None = None,
                config: dict | None = None) -> None:
    """Print a rendered table and persist it under benchmarks/results/.

    Writes two files: the human-readable ``<name>.txt`` table, and a
    machine-readable ``<name>.json`` carrying the structured ``metrics``
    and ``config`` the caller passes (plus the git revision), so runs can
    be diffed/plotted without re-parsing rendered tables.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    payload = {
        "name": name,
        "git_rev": _git_rev(),
        "config": config or {},
        "metrics": metrics or {},
    }
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"
    )
    print()
    print(text)


def fast_zigong_config(epochs: int = 8, seed: int = SEED):
    """The benchmark-scale ZiGong config (seconds per fine-tune)."""
    base = make_test_config(seed=seed)
    return dataclasses.replace(
        base,
        training=dataclasses.replace(base.training, epochs=epochs),
        base_lr=5e-3,
        min_lr=5e-4,
    )


def train_plain(examples, epochs: int = 8, seed: int = SEED, name: str = "model") -> ZiGong:
    """Instruction-tune on the given examples without any pruning."""
    zigong = ZiGong.from_examples(examples, config=fast_zigong_config(epochs, seed))
    zigong.finetune(examples)
    return zigong


def train_pruned(train, val, epochs: int = 8, seed: int = SEED, gamma: float = 0.9,
                 pruned_fraction: float = 0.3) -> ZiGong:
    """The full ZiGong pipeline: warmup -> TracSeq -> 70/30 mix -> fine-tune."""
    pipeline = ZiGongPipeline(
        PipelineConfig(
            zigong=fast_zigong_config(epochs, seed),
            pruner=PrunerConfig(strategy="tracseq", gamma=gamma, projection_dim=128, seed=seed),
            pruned_fraction=pruned_fraction,
            warmup_epochs=2,
            seed=seed,
        )
    )
    return pipeline.run(train, val).zigong


def mismatch_answers(examples) -> list[InstructExample]:
    """Re-answer examples with an out-of-benchmark vocabulary.

    Models tuned on these produce generations the benchmark parser cannot
    map to the expected answers — the FinMA-style Miss failure in Table 2.
    """
    swapped = []
    for example in examples:
        answer = "positive" if example.label == 1 else "negative"
        swapped.append(
            InstructExample(
                prompt=example.prompt,
                answer=answer,
                label=example.label,
                timestamp=example.timestamp,
                meta=example.meta,
            )
        )
    return swapped


def synthetic_traffic(n_requests: int, seed: int = SEED) -> list[tuple[str, str]]:
    """Synthetic Behavior-Card traffic: ``(user_id, behavior_text)`` pairs.

    Every text is distinct so serving benchmarks (``bench_serving.py``)
    measure the scoring path, not the response cache.
    """
    from repro.datasets import make_behavior

    n_users = max(1, (n_requests + 1) // 2)
    dataset = make_behavior(n_users=n_users, n_periods=2, seed=seed)
    traffic = [
        (f"user-{user:04d}-p{period}", dataset.row_text(user, period))
        for user in range(dataset.n_users)
        for period in range(dataset.n_periods)
    ]
    return traffic[:n_requests]


def behavior_eval_samples(examples) -> list[EvalSample]:
    return [
        EvalSample(prompt=e.prompt, label=e.label, positive_text="yes", negative_text="no")
        for e in examples
    ]


def behavior_study_split(n_users: int = 120, n_periods: int = 5, seed: int = SEED,
                         train_user_share: float = 0.75, n_val: int = 20):
    """User-level split of behavior data for the pruning studies.

    Training pool: every period of the first ``train_user_share`` users.
    Validation: a random slice of the pool (used as TracSeq's test set).
    Test: the *two most recent periods* of the held-out users — the
    deployment view, with no user overlap with training.
    """
    import numpy as np

    from repro.data import build_behavior_examples
    from repro.datasets import make_behavior

    dataset = make_behavior(n_users=n_users, n_periods=n_periods, seed=seed)
    examples = build_behavior_examples(dataset)
    cutoff = int(train_user_share * n_users)
    pool = [e for e in examples if e.meta["user"] < cutoff]
    test = [
        e for e in examples
        if e.meta["user"] >= cutoff and e.timestamp >= n_periods - 2
    ]
    rng = np.random.default_rng(seed)
    val_idx = set(rng.choice(len(pool), size=n_val, replace=False).tolist())
    val = [e for i, e in enumerate(pool) if i in val_idx]
    pool = [e for i, e in enumerate(pool) if i not in val_idx]
    return pool, val, test
