"""Table 2: LLMs and expert systems on the CALM benchmark.

Regenerates the paper's main results table.  Column mapping (paper ->
this reproduction, see DESIGN.md):

* ZiGong          -> the full pipeline (TracSeq pruning + 70/30 mix)
* CALM            -> instruction-tuned, no pruning
* ChatGPT/Llama…  -> zero-shot un-tuned LM ("zero-shot")
* FinMA           -> tuned with a mismatched answer vocabulary ("finma-like")
* expert systems  -> majority class + from-scratch logistic regression

Shape assertions encode the paper's qualitative findings; absolute
numbers differ (tiny model, synthetic data).
"""

from __future__ import annotations

import pytest

from repro.baselines import ExpertSystemModel, MajorityClassModel
from repro.core import ZiGong
from repro.eval import CalmBenchmark, evaluate

from conftest import fast_zigong_config, mismatch_answers, save_result, train_plain, train_pruned

SIZES = {
    "german": 300,
    "australia": 300,
    "creditcard_fraud": 300,
    "ccfraud": 300,
    "travel_insurance": 300,
}


@pytest.fixture(scope="module")
def bench_suite():
    return CalmBenchmark(sizes=SIZES, seed=0)


@pytest.fixture(scope="module")
def table2_results(bench_suite):
    """Train every model on every task (the expensive part, done once)."""
    results = []
    for task in bench_suite.tasks.values():
        train_ex = task.train_examples
        split = int(0.9 * len(train_ex))
        tune, val = train_ex[:split], train_ex[split:]

        zigong = train_pruned(tune, val)
        calm_like = train_plain(train_ex)
        finma_like = train_plain(mismatch_answers(train_ex))
        zero_shot = ZiGong.from_examples(train_ex, config=fast_zigong_config())  # untrained

        models = {
            "ZiGong": zigong.classifier(),
            "CALM-like": calm_like.classifier(),
            "FinMA-like": finma_like.classifier(),
            "zero-shot": zero_shot.classifier(),
            "majority": MajorityClassModel(list(task.train.y)),
            "logistic": ExpertSystemModel.logistic(task.train),
        }
        for name, model in models.items():
            model.name = name
            results.append(evaluate(model, task.eval_samples, dataset_name=task.name))
    return results


def test_table2_report(benchmark, table2_results):
    """Render and persist the Table 2 reproduction."""
    table = benchmark(
        lambda: CalmBenchmark.table(table2_results, title="Table 2 (reproduced, synthetic data)")
    )
    save_result("table2", table)
    assert len(table2_results) == len(SIZES) * 6


def test_tuned_models_do_not_miss(benchmark, table2_results):
    benchmark(lambda: [r.as_row() for r in table2_results])
    """Instruction-tuned models answer in-format (paper: ZiGong Miss ~ 0)."""
    for r in table2_results:
        if r.model in ("ZiGong", "CALM-like"):
            assert r.miss <= 0.1, f"{r.model} on {r.dataset}: miss={r.miss}"


def test_finma_like_misses_heavily(benchmark, table2_results):
    benchmark(lambda: [r.miss for r in table2_results])
    """A mismatched answer vocabulary yields a large Miss rate (paper: FinMA)."""
    misses = [r.miss for r in table2_results if r.model == "FinMA-like"]
    assert sum(m >= 0.5 for m in misses) >= 4, misses


def test_zigong_beats_zero_shot(benchmark, table2_results):
    benchmark(lambda: {(r.model, r.dataset): r.accuracy for r in table2_results})
    """Domain fine-tuning dominates zero-shot on most datasets."""
    by = {(r.model, r.dataset): r for r in table2_results}
    wins = sum(
        by[("ZiGong", d)].accuracy >= by[("zero-shot", d)].accuracy for d in SIZES
    )
    assert wins >= 4, f"ZiGong only matched/beat zero-shot on {wins}/5 datasets"


def test_zigong_competitive_with_no_pruning(benchmark, table2_results):
    benchmark(lambda: {(r.model, r.dataset): r.accuracy for r in table2_results})
    """Pruning must not hurt aggregate accuracy (paper: it helps)."""
    by = {(r.model, r.dataset): r for r in table2_results}
    zg = sum(by[("ZiGong", d)].accuracy for d in SIZES) / len(SIZES)
    calm = sum(by[("CALM-like", d)].accuracy for d in SIZES) / len(SIZES)
    assert zg >= calm - 0.05, f"ZiGong={zg:.3f} vs CALM-like={calm:.3f}"


def test_zigong_beats_majority_overall(benchmark, table2_results):
    benchmark(lambda: {(r.model, r.dataset): r.f1 for r in table2_results})
    by = {(r.model, r.dataset): r for r in table2_results}
    zg = sum(by[("ZiGong", d)].f1 for d in SIZES)
    maj = sum(by[("majority", d)].f1 for d in SIZES)
    assert zg > maj


def test_benchmark_evaluation_latency(benchmark, bench_suite, table2_results):
    """Time the evaluation harness itself on one dataset."""
    task = bench_suite.tasks["german"]
    model = MajorityClassModel(list(task.train.y))
    benchmark(lambda: evaluate(model, task.eval_samples, dataset_name="german"))
