"""Ablation A4: pruning-strategy comparison.

Compares every scoring strategy the library implements — TracSeq (the
paper), plain TracInCP, the agent model, PPL (Li et al., 2023),
the agent+TracSeq combination, and a random control — in the same
70/30 hybrid-mix pipeline on sequential behavior data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DataPruner, PrunerConfig, ZiGong
from repro.data import hybrid_mix
from repro.eval import evaluate, format_table
from repro.training import CheckpointManager

from conftest import SEED, behavior_eval_samples, behavior_study_split, fast_zigong_config, save_result

STRATEGIES = ("tracseq", "tracin", "agent", "ppl", "combined", "random")


@pytest.fixture(scope="module")
def strategy_study(tmp_path_factory):
    pool, val, test = behavior_study_split(n_users=120, n_periods=5, seed=SEED)

    warm = ZiGong.from_examples(pool + val, config=fast_zigong_config(epochs=2))
    ckpt_dir = tmp_path_factory.mktemp("strat-ckpts")
    warm.finetune(pool, checkpoint_dir=ckpt_dir)
    checkpoints = CheckpointManager(ckpt_dir).checkpoints()

    pool_labels = [e.label for e in pool]
    budget = len(pool) // 2
    results = {}
    for strategy in STRATEGIES:
        pruner = DataPruner(
            PrunerConfig(strategy=strategy, gamma=0.8, projection_dim=128, seed=SEED)
        )
        scores = pruner.score(warm, pool, val, checkpoints)
        mixed = hybrid_mix(
            pool, scores, total=budget, pruned_fraction=0.3, seed=SEED, labels=pool_labels
        )
        model = ZiGong.from_examples(pool + val, config=fast_zigong_config(epochs=8))
        model.finetune(mixed)
        results[strategy] = evaluate(model.classifier(), behavior_eval_samples(test), "behavior")
    return results


def test_strategy_ablation_report(benchmark, strategy_study):
    benchmark(lambda: sorted(strategy_study.items()))
    rows = [
        [name, r.accuracy, r.f1, r.miss, r.ks]
        for name, r in strategy_study.items()
    ]
    save_result(
        "ablation_strategies",
        format_table(
            ["Strategy", "Acc", "F1", "Miss", "KS"],
            rows,
            title="Ablation A4: pruning strategies in the 70/30 mix pipeline",
        ),
    )
    assert len(strategy_study) == len(STRATEGIES)


def test_all_strategies_produce_valid_models(benchmark, strategy_study):
    benchmark(lambda: [r.miss for r in strategy_study.values()])
    for name, result in strategy_study.items():
        assert result.miss <= 0.2, f"{name}: miss={result.miss}"


def test_tracseq_competitive_with_random(benchmark, strategy_study):
    """The paper's method must not lose to the random control."""
    benchmark(lambda: [r.accuracy for r in strategy_study.values()])
    tracseq = strategy_study["tracseq"].accuracy + strategy_study["tracseq"].f1
    random = strategy_study["random"].accuracy + strategy_study["random"].f1
    assert tracseq >= random - 0.08, f"tracseq={tracseq:.3f} vs random={random:.3f}"
