"""Table 3: configuration details of the ZiGong model.

Renders the paper's configuration table next to the scaled values this
reproduction uses, and asserts that every *structural* choice (LoRA
rank/alpha/targets, optimizer betas, schedule, batch/accumulation) is
preserved exactly.
"""

from __future__ import annotations

from repro.config import PAPER_TABLE3, bench_config, table3_rows
from repro.eval import format_table
from repro.optim import AdamW
from repro.nn import MistralTiny

from conftest import save_result


def test_table3_report(benchmark):
    benchmark(lambda: table3_rows(bench_config()))
    rows = table3_rows(bench_config())
    save_result(
        "table3",
        format_table(
            ["Category", "Parameter", "Paper (Mistral 7B)", "This reproduction"],
            rows,
            title="Table 3 (reproduced): ZiGong configuration",
        ),
    )
    assert len(rows) >= 14


def test_structural_choices_match_paper(benchmark):
    benchmark(bench_config)
    config = bench_config()
    assert config.lora.rank == PAPER_TABLE3["lora_rank"]
    assert config.lora.alpha == PAPER_TABLE3["lora_alpha"]
    assert set(config.lora.target_modules) == {"wq", "wk", "wv"}  # {query,key,value}
    assert config.training.batch_size == PAPER_TABLE3["batch_size"]
    assert config.training.grad_accum_steps == PAPER_TABLE3["grad_accumulation"]


def test_optimizer_betas_match_paper(benchmark):
    benchmark(bench_config)
    model = MistralTiny(bench_config().model, rng=0)
    optimizer = AdamW(model.parameters())
    assert (optimizer.beta1, optimizer.beta2) == PAPER_TABLE3["optimizer_betas"]


def test_benchmark_model_construction(benchmark):
    """Time building the benchmark-size model (config -> weights)."""
    config = bench_config().model
    benchmark(lambda: MistralTiny(config, rng=0))
