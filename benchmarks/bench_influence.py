"""P4: gradient store speedup — repeated influence scoring + gamma sweep.

TracSeq's cost is dominated by per-(checkpoint, example) backward
passes.  The :class:`~repro.influence.GradientStore` makes each such
row a compute-once artifact, so a repeated-scoring workload (the
serving reality: the same validation set scored against the same
checkpoints, call after call) and a gamma sweep (the Table-2 ablation)
collapse to one gradient pass plus cheap recombination.

This benchmark runs the same workload twice — once with caching
disabled (``max_entries=0``, the pre-store behavior of recomputing
every call) and once against a shared store — and asserts

* >= 3x wall-clock speedup (ISSUE-3 acceptance), and
* numerically identical scores from both paths.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.eval import format_table
from repro.influence import GradientProjector, GradientStore, TracSeq, trainable_parameters
from repro.nn import MistralTiny, ModelConfig
from repro.obs import Observability
from repro.optim import AdamW
from repro.training import CheckpointManager, Trainer, TrainingConfig

from conftest import save_result

SEED = 0
N_TRAIN, N_TEST = 24, 6
SEQ_LEN = 8
PROJECTION_K = 64
N_REPEAT_SCORES = 2
GAMMAS = (0.5, 0.7, 0.9, 1.0)
MIN_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def replay_setup(tmp_path_factory):
    """A tiny trained model with checkpoints, plus train/test token sets."""
    config = ModelConfig(
        vocab_size=64, d_model=32, n_layers=2, n_heads=4, n_kv_heads=2,
        d_ff=64, max_seq_len=32, sliding_window=16,
    )
    model = MistralTiny(config, rng=SEED)
    rng = np.random.default_rng(SEED)
    make = lambda: (lambda ids: (ids, ids))(list(rng.integers(5, 60, size=SEQ_LEN)))
    train = [make() for _ in range(N_TRAIN)]
    test = [make() for _ in range(N_TEST)]
    ckpt_dir = tmp_path_factory.mktemp("ckpt")
    manager = CheckpointManager(ckpt_dir)
    trainer = Trainer(
        model,
        AdamW(model.parameters(), lr=3e-3),
        TrainingConfig(epochs=2, batch_size=6, checkpoint_every=2, shuffle=False, seed=SEED),
        checkpoint_manager=manager,
    )
    trainer.train(train)
    return model, manager.checkpoints(), train, test


def _projector(model):
    dim = sum(p.size for p in trainable_parameters(model))
    return GradientProjector(dim, k=PROJECTION_K, seed=SEED)


def _workload(model, checkpoints, train, test, store_factory):
    """Repeated scoring + gamma sweep; returns (results, elapsed seconds).

    ``store_factory()`` supplies the store for every tracer the workload
    builds — a shared live store for the cached arm, a ``max_entries=0``
    store (nothing retained, the pre-store recompute-everything
    behavior) for the uncached arm.
    """
    results: dict[str, np.ndarray] = {}
    started = time.perf_counter()
    projector = _projector(model)
    tracer = TracSeq(model, checkpoints, gamma=0.9, projector=projector,
                     store=store_factory())
    for call in range(N_REPEAT_SCORES):
        results[f"scores_call{call}"] = tracer.scores(train, test)
    for gamma in GAMMAS:
        sweep = TracSeq(model, checkpoints, gamma=gamma, projector=projector,
                        store=store_factory())
        results[f"gamma_{gamma}"] = sweep.scores(train, test)
    return results, time.perf_counter() - started


def test_gradient_store_speedup(replay_setup):
    model, checkpoints, train, test = replay_setup

    uncached, t_uncached = _workload(
        model, checkpoints, train, test, lambda: GradientStore(max_entries=0)
    )
    shared = GradientStore()
    cached, t_cached = _workload(
        model, checkpoints, train, test, lambda: shared
    )

    for key, expected in uncached.items():
        np.testing.assert_allclose(
            cached[key], expected, rtol=0, atol=1e-10,
            err_msg=f"cached result diverged for {key}",
        )

    speedup = t_uncached / t_cached
    n_calls = N_REPEAT_SCORES + len(GAMMAS)
    stats = shared.stats()
    rows = [
        ["uncached (recompute per call)", n_calls, f"{t_uncached:.2f}", "1.0x"],
        ["gradient store (shared)", n_calls, f"{t_cached:.2f}", f"{speedup:.1f}x"],
    ]
    table = format_table(
        ["Influence workload", "Scoring calls", "Seconds", "Speedup"],
        rows,
        title=(
            f"Gradient store: {len(checkpoints)} checkpoints, "
            f"{N_TRAIN}+{N_TEST} examples, k={PROJECTION_K} "
            f"(hits={int(stats['hits_memory'])}, misses={int(stats['misses'])})"
        ),
    )
    save_result("influence", table)

    assert speedup >= MIN_SPEEDUP, (
        f"gradient store speedup {speedup:.2f}x below the {MIN_SPEEDUP}x floor "
        f"(uncached {t_uncached:.2f}s vs cached {t_cached:.2f}s)"
    )


def test_disk_tier_warm_start(replay_setup, tmp_path):
    """A fresh process-equivalent (new store, same cache_dir) takes zero passes."""
    model, checkpoints, train, test = replay_setup
    cache_dir = tmp_path / "gradcache"
    projector = _projector(model)

    warm = TracSeq(model, checkpoints, gamma=0.9, projector=projector,
                   cache_dir=cache_dir)
    expected = warm.scores(train, test)

    obs = Observability.create()
    cold_store = GradientStore(cache_dir=cache_dir, obs=obs)
    restarted = TracSeq(model, checkpoints, gamma=0.9, projector=projector,
                        store=cold_store, obs=obs)
    got = restarted.scores(train, test)

    np.testing.assert_allclose(got, expected, rtol=0, atol=1e-10)
    counters = obs.metrics.snapshot()["counters"]
    assert counters.get("influence.gradient_passes", 0) == 0
    assert cold_store.stats()["hits_disk"] > 0
