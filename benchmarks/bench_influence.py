"""P4: gradient store speedup — repeated influence scoring + gamma sweep.

TracSeq's cost is dominated by per-(checkpoint, example) backward
passes.  The :class:`~repro.influence.GradientStore` makes each such
row a compute-once artifact, so a repeated-scoring workload (the
serving reality: the same validation set scored against the same
checkpoints, call after call) and a gamma sweep (the Table-2 ablation)
collapse to one gradient pass plus cheap recombination.

This benchmark runs the same workload twice — once with caching
disabled (``max_entries=0``, the pre-store behavior of recomputing
every call) and once against a shared store — and asserts

* >= 3x wall-clock speedup (ISSUE-3 acceptance), and
* numerically identical scores from both paths.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.eval import format_table
from repro.influence import (
    DataInf,
    GradientProjector,
    GradientStore,
    TracInCP,
    TracSeq,
    trainable_parameters,
)
from repro.nn import MistralTiny, ModelConfig
from repro.obs import Observability
from repro.optim import AdamW
from repro.training import CheckpointManager, Trainer, TrainingConfig

from conftest import RESULTS_DIR, save_result

SEED = 0
N_TRAIN, N_TEST = 24, 6
SEQ_LEN = 8
PROJECTION_K = 64
N_REPEAT_SCORES = 2
GAMMAS = (0.5, 0.7, 0.9, 1.0)
MIN_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def replay_setup(tmp_path_factory):
    """A tiny trained model with checkpoints, plus train/test token sets."""
    config = ModelConfig(
        vocab_size=64, d_model=32, n_layers=2, n_heads=4, n_kv_heads=2,
        d_ff=64, max_seq_len=32, sliding_window=16,
    )
    model = MistralTiny(config, rng=SEED)
    rng = np.random.default_rng(SEED)
    make = lambda: (lambda ids: (ids, ids))(list(rng.integers(5, 60, size=SEQ_LEN)))
    train = [make() for _ in range(N_TRAIN)]
    test = [make() for _ in range(N_TEST)]
    ckpt_dir = tmp_path_factory.mktemp("ckpt")
    manager = CheckpointManager(ckpt_dir)
    trainer = Trainer(
        model,
        AdamW(model.parameters(), lr=3e-3),
        TrainingConfig(epochs=2, batch_size=6, checkpoint_every=2, shuffle=False, seed=SEED),
        checkpoint_manager=manager,
    )
    trainer.train(train)
    return model, manager.checkpoints(), train, test


def _projector(model):
    dim = sum(p.size for p in trainable_parameters(model))
    return GradientProjector(dim, k=PROJECTION_K, seed=SEED)


def _workload(model, checkpoints, train, test, store_factory):
    """Repeated scoring + gamma sweep; returns (results, elapsed seconds).

    ``store_factory()`` supplies the store for every tracer the workload
    builds — a shared live store for the cached arm, a ``max_entries=0``
    store (nothing retained, the pre-store recompute-everything
    behavior) for the uncached arm.
    """
    results: dict[str, np.ndarray] = {}
    started = time.perf_counter()
    projector = _projector(model)
    tracer = TracSeq(model, checkpoints, gamma=0.9, projector=projector,
                     store=store_factory())
    for call in range(N_REPEAT_SCORES):
        results[f"scores_call{call}"] = tracer.influence(train, test).sum(axis=1)
    for gamma in GAMMAS:
        sweep = TracSeq(model, checkpoints, gamma=gamma, projector=projector,
                        store=store_factory())
        results[f"gamma_{gamma}"] = sweep.influence(train, test).sum(axis=1)
    return results, time.perf_counter() - started


def test_gradient_store_speedup(replay_setup):
    model, checkpoints, train, test = replay_setup

    uncached, t_uncached = _workload(
        model, checkpoints, train, test, lambda: GradientStore(max_entries=0)
    )
    shared = GradientStore()
    cached, t_cached = _workload(
        model, checkpoints, train, test, lambda: shared
    )

    for key, expected in uncached.items():
        np.testing.assert_allclose(
            cached[key], expected, rtol=0, atol=1e-10,
            err_msg=f"cached result diverged for {key}",
        )

    speedup = t_uncached / t_cached
    n_calls = N_REPEAT_SCORES + len(GAMMAS)
    stats = shared.stats()
    rows = [
        ["uncached (recompute per call)", n_calls, f"{t_uncached:.2f}", "1.0x"],
        ["gradient store (shared)", n_calls, f"{t_cached:.2f}", f"{speedup:.1f}x"],
    ]
    table = format_table(
        ["Influence workload", "Scoring calls", "Seconds", "Speedup"],
        rows,
        title=(
            f"Gradient store: {len(checkpoints)} checkpoints, "
            f"{N_TRAIN}+{N_TEST} examples, k={PROJECTION_K} "
            f"(hits={int(stats['hits_memory'])}, misses={int(stats['misses'])})"
        ),
    )
    save_result("influence", table)

    assert speedup >= MIN_SPEEDUP, (
        f"gradient store speedup {speedup:.2f}x below the {MIN_SPEEDUP}x floor "
        f"(uncached {t_uncached:.2f}s vs cached {t_cached:.2f}s)"
    )


def test_disk_tier_warm_start(replay_setup, tmp_path):
    """A fresh process-equivalent (new store, same cache_dir) takes zero passes."""
    model, checkpoints, train, test = replay_setup
    cache_dir = tmp_path / "gradcache"
    projector = _projector(model)

    warm = TracSeq(model, checkpoints, gamma=0.9, projector=projector,
                   cache_dir=cache_dir)
    expected = warm.influence(train, test).sum(axis=1)

    obs = Observability.create()
    cold_store = GradientStore(cache_dir=cache_dir, obs=obs)
    restarted = TracSeq(model, checkpoints, gamma=0.9, projector=projector,
                        store=cold_store, obs=obs)
    got = restarted.influence(train, test).sum(axis=1)

    np.testing.assert_allclose(got, expected, rtol=0, atol=1e-10)
    counters = obs.metrics.snapshot()["counters"]
    assert counters.get("influence.gradient_passes", 0) == 0
    assert cold_store.stats()["hits_disk"] > 0


DATAINF_MIN_SPEEDUP = 1.5
DATAINF_SECTION = "DataInf vs TracInCP"


def _rank_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation (ranks, then Pearson)."""
    ranks_a = np.argsort(np.argsort(a)).astype(np.float64)
    ranks_b = np.argsort(np.argsort(b)).astype(np.float64)
    return float(np.corrcoef(ranks_a, ranks_b)[0, 1])


def test_datainf_faster_than_tracin_replay(replay_setup):
    """DataInf (one checkpoint, closed form) vs TracInCP (full replay).

    Both arms run cold (fresh stores): the comparison is honest compute
    cost, not cache luck.  DataInf takes one backward pass per example
    at the final checkpoint; TracInCP takes one per (checkpoint,
    example) pair — the wall-clock gap grows with checkpoint count.
    Accuracy retention is reported as the Spearman rank correlation of
    the per-train-example score sums plus the top-5 overlap.
    """
    model, checkpoints, train, test = replay_setup
    projector = _projector(model)

    started = time.perf_counter()
    tracin_scores = TracInCP(
        model, checkpoints, projector=projector, store=GradientStore()
    ).influence(train, test).sum(axis=1)
    t_tracin = time.perf_counter() - started

    started = time.perf_counter()
    datainf_scores = DataInf(
        model, checkpoints, projector=projector, store=GradientStore()
    ).influence(train, test).sum(axis=1)
    t_datainf = time.perf_counter() - started

    speedup = t_tracin / t_datainf
    correlation = _rank_correlation(tracin_scores, datainf_scores)
    k = 5
    top_tracin = set(np.argsort(tracin_scores)[::-1][:k])
    top_datainf = set(np.argsort(datainf_scores)[::-1][:k])
    overlap = len(top_tracin & top_datainf) / k

    table = format_table(
        ["Estimator", "Checkpoints", "Seconds", "Speedup", "Rank corr", f"Top-{k} overlap"],
        [
            ["tracin (replay)", len(checkpoints), f"{t_tracin:.2f}", "1.0x", "1.00", "1.00"],
            ["datainf (closed form)", 1, f"{t_datainf:.2f}", f"{speedup:.1f}x",
             f"{correlation:.2f}", f"{overlap:.2f}"],
        ],
        title=(
            f"{DATAINF_SECTION}: {N_TRAIN}+{N_TEST} examples, "
            f"k={PROJECTION_K}, accuracy retention vs full replay"
        ),
    )
    # Append below the gradient-store table in influence.txt (replacing
    # any stale DataInf section from a previous partial run).
    path = RESULTS_DIR / "influence.txt"
    existing = path.read_text() if path.exists() else ""
    existing = existing.split(DATAINF_SECTION.join(["", ""]))[0] if DATAINF_SECTION in existing else existing
    head = existing.rstrip()
    save_result("influence", (head + "\n\n" + table) if head else table)

    assert speedup >= DATAINF_MIN_SPEEDUP, (
        f"DataInf speedup {speedup:.2f}x below the {DATAINF_MIN_SPEEDUP}x floor "
        f"(tracin {t_tracin:.2f}s vs datainf {t_datainf:.2f}s)"
    )
    assert np.isfinite(correlation)
