"""Extension experiment X1: catastrophic forgetting and replay.

The paper's first contribution claims TracSeq-selected data "preserves
long-term knowledge and reduces catastrophic forgetting".  This bench
quantifies the phenomenon the claim addresses: accuracy on task A after
sequential fine-tuning on task B, with increasing replay of A's data
(the hybrid mix acting as the replay buffer).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import test_config as make_test_config
from repro.core import ZiGong
from repro.data import build_classification_examples
from repro.datasets import make_audit, make_german
from repro.eval import format_table, measure_forgetting

from conftest import SEED, save_result

REPLAY_FRACTIONS = (0.0, 0.25, 0.5)


def _fresh(examples, epochs=8):
    config = make_test_config(seed=SEED)
    config = dataclasses.replace(
        config, training=dataclasses.replace(config.training, epochs=epochs), base_lr=5e-3
    )
    return ZiGong.from_examples(examples, config=config)


@pytest.fixture(scope="module")
def forgetting_study():
    german = make_german(n=240, seed=SEED)
    g_train, g_test = german.split(test_fraction=0.25, seed=SEED)
    audit = make_audit(n=240, seed=SEED)
    a_train, a_test = audit.split(test_fraction=0.25, seed=SEED)
    task_a_train = build_classification_examples(g_train)
    task_a_test = build_classification_examples(g_test)
    task_b_train = build_classification_examples(a_train)
    task_b_test = build_classification_examples(a_test)
    everything = task_a_train + task_a_test + task_b_train + task_b_test

    results = {}
    for fraction in REPLAY_FRACTIONS:
        results[fraction] = measure_forgetting(
            _fresh(everything),
            task_a_train,
            task_a_test,
            task_b_train,
            task_b_test,
            replay_fraction=fraction,
            seed=SEED,
        )
    return results


def test_forgetting_report(benchmark, forgetting_study):
    benchmark(lambda: sorted(forgetting_study.items()))
    rows = [
        [f, r.before_accuracy, r.after_accuracy, r.forgetting, r.task_b_accuracy]
        for f, r in sorted(forgetting_study.items())
    ]
    save_result(
        "forgetting",
        format_table(
            ["Replay", "A before", "A after", "Forgetting", "B acc"],
            rows,
            title="X1: catastrophic forgetting under sequential fine-tuning "
            "(german -> audit), mitigated by replay",
        ),
    )
    assert len(forgetting_study) == len(REPLAY_FRACTIONS)


def test_sequential_training_forgets(benchmark, forgetting_study):
    """Without replay, task-A accuracy must drop measurably."""
    benchmark(lambda: forgetting_study[0.0].forgetting)
    assert forgetting_study[0.0].forgetting > 0.0


def test_replay_mitigates(benchmark, forgetting_study):
    """More replay, less forgetting (monotone within tolerance)."""
    benchmark(lambda: [r.forgetting for r in forgetting_study.values()])
    plain = forgetting_study[0.0].forgetting
    best = min(forgetting_study[f].forgetting for f in REPLAY_FRACTIONS if f > 0)
    assert best <= plain + 1e-9, f"replay did not reduce forgetting: {best} vs {plain}"


def test_task_b_still_learned(benchmark, forgetting_study):
    benchmark(lambda: [r.task_b_accuracy for r in forgetting_study.values()])
    for fraction, result in forgetting_study.items():
        assert result.task_b_accuracy >= 0.6, (
            f"replay={fraction}: task B acc {result.task_b_accuracy}"
        )
