"""Figure 2: data pruning — high- vs low-influence samples across sizes.

Regenerates the paper's pruning study on sequential behavior data: for
each sample-budget fraction, train on (a) the highest-TracSeq samples,
(b) the lowest, (c) a random subset, and report accuracy and the KS
statistic on a held-out latest-period test set.

Paper findings encoded as assertions:
* high-influence selections dominate low-influence ones;
* half of the high-influence samples match (or beat) training on the
  full original dataset, measured by KS.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DataPruner, PrunerConfig, ZiGong
from repro.influence import stratified_top_k
from repro.eval import evaluate, format_table
from repro.training import CheckpointManager

from conftest import SEED, behavior_eval_samples, behavior_study_split, fast_zigong_config, save_result

FRACTIONS = (0.25, 0.5, 0.75, 1.0)


@pytest.fixture(scope="module")
def study(tmp_path_factory):
    """Score the training pool once; train one model per (selection, fraction)."""
    pool, val, test = behavior_study_split(n_users=120, n_periods=5, seed=SEED)

    # Warmup fine-tune to produce checkpoints, then TracSeq scoring.
    warm_cfg = fast_zigong_config(epochs=2)
    warm = ZiGong.from_examples(pool + val, config=warm_cfg)
    ckpt_dir = tmp_path_factory.mktemp("fig2-ckpts")
    warm.finetune(pool, checkpoint_dir=ckpt_dir)
    checkpoints = CheckpointManager(ckpt_dir).checkpoints()
    pruner = DataPruner(PrunerConfig(strategy="tracseq", gamma=0.8, projection_dim=128))
    scores = pruner.score(warm, pool, val, checkpoints)

    labels = np.array([e.label for e in pool])
    rng2 = np.random.default_rng(SEED + 1)

    def subset(selection: str, fraction: float):
        k = max(8, int(round(fraction * len(pool))))
        if selection == "high":
            idx = stratified_top_k(scores, labels, k)
        elif selection == "low":
            idx = stratified_top_k(-scores, labels, k)
        else:
            idx = rng2.choice(len(pool), size=k, replace=False)
        return [pool[i] for i in idx]

    rows = {}
    for selection in ("high", "low", "random"):
        for fraction in FRACTIONS:
            train = subset(selection, fraction)
            model = ZiGong.from_examples(pool + val, config=fast_zigong_config(epochs=8))
            model.finetune(train)
            result = evaluate(model.classifier(), behavior_eval_samples(test), "behavior")
            rows[(selection, fraction)] = result
    return rows, scores, pool


def test_figure2_report(benchmark, study):
    rows, _, _ = study
    benchmark(lambda: sorted(rows.items()))
    table_rows = []
    for (selection, fraction), result in sorted(rows.items()):
        table_rows.append([selection, fraction, result.accuracy, result.f1, result.ks])
    save_result(
        "figure2",
        format_table(
            ["Selection", "Fraction", "Acc", "F1", "KS"],
            table_rows,
            title="Figure 2 (reproduced): pruning study on behavior data",
        ),
    )
    assert len(rows) == 3 * len(FRACTIONS)


def test_high_influence_beats_low_influence(benchmark, study):
    """The headline gap of Figure 2."""
    rows, _, _ = study
    benchmark(lambda: [r.accuracy for r in rows.values()])
    high = np.mean([rows[("high", f)].accuracy + rows[("high", f)].f1 for f in FRACTIONS])
    low = np.mean([rows[("low", f)].accuracy + rows[("low", f)].f1 for f in FRACTIONS])
    assert high > low, f"mean acc+f1 high={high:.3f} vs low={low:.3f}"


def test_half_high_influence_matches_full_data(benchmark, study):
    """Half of the high-influence samples ~ the full original dataset (KS)."""
    rows, _, _ = study
    benchmark(lambda: [r.ks for r in rows.values()])
    half_high = rows[("high", 0.5)]
    full_random = rows[("random", 1.0)]
    assert half_high.accuracy + half_high.f1 >= full_random.accuracy + full_random.f1 - 0.1, (
        f"half-high acc+f1={half_high.accuracy + half_high.f1:.3f} vs "
        f"full={full_random.accuracy + full_random.f1:.3f}"
    )


def test_tracseq_scores_favor_recent_periods(benchmark, study):
    """Scores must increase with sample recency (the TracSeq design goal)."""
    _, scores, pool = study
    benchmark(lambda: scores.mean())
    stamps = np.array([e.timestamp for e in pool])
    means = [scores[stamps == p].mean() for p in sorted(set(stamps))]
    assert means[-1] > means[0]


def test_benchmark_tracseq_scoring(benchmark, study, tmp_path_factory):
    """Time TracSeq scoring of a small pool (the per-sample-gradient cost)."""
    _, _, pool = study
    warm = ZiGong.from_examples(pool, config=fast_zigong_config(epochs=1))
    ckpt_dir = tmp_path_factory.mktemp("fig2-bench-ckpts")
    warm.finetune(pool[:64], checkpoint_dir=ckpt_dir)
    checkpoints = CheckpointManager(ckpt_dir).checkpoints()[-2:]
    pruner = DataPruner(PrunerConfig(strategy="tracseq", gamma=0.8, projection_dim=64))

    def run():
        return pruner.score(warm, pool[:16], pool[16:20], checkpoints)

    benchmark.pedantic(run, rounds=1, iterations=1)
