"""Ablation A1: the TracSeq time-decay factor gamma.

gamma = 1.0 recovers plain TracInCP; the paper argues gamma < 1 fits
sequential financial data better.  We compute per-checkpoint gradient
products once, recombine them for each gamma, train on the Top-50% of
each ranking, and compare downstream KS on a latest-period test set.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ZiGong
from repro.influence import TracSeq, stratified_top_k
from repro.data import timestamps_of
from repro.eval import evaluate, format_table
from repro.training import CheckpointManager

from conftest import SEED, behavior_eval_samples, behavior_study_split, fast_zigong_config, save_result

GAMMAS = (1.0, 0.9, 0.7, 0.5)


@pytest.fixture(scope="module")
def gamma_study(tmp_path_factory):
    pool, val, test = behavior_study_split(n_users=120, n_periods=5, seed=SEED)

    warm = ZiGong.from_examples(pool + val, config=fast_zigong_config(epochs=2))
    ckpt_dir = tmp_path_factory.mktemp("gamma-ckpts")
    warm.finetune(pool, checkpoint_dir=ckpt_dir)
    checkpoints = CheckpointManager(ckpt_dir).checkpoints()

    tracer = TracSeq(warm.model, checkpoints, gamma=0.9)
    products = tracer.checkpoint_products(warm.tokenize(pool), warm.tokenize(val))
    lrs = np.array([r.lr for r in tracer.checkpoints])
    times = np.arange(len(tracer.checkpoints), dtype=np.float64)
    horizon = times[-1]
    sample_times = timestamps_of(pool)
    sample_horizon = sample_times.max()

    results = {}
    for gamma in GAMMAS:
        ckpt_weights = gamma ** (horizon - times)
        scores = (ckpt_weights * lrs) @ products
        scores = scores * gamma ** (sample_horizon - sample_times)
        pool_labels = np.array([e.label for e in pool])
        top = stratified_top_k(scores, pool_labels, len(pool) // 2)
        train = [pool[i] for i in top]
        model = ZiGong.from_examples(pool + val, config=fast_zigong_config(epochs=8))
        model.finetune(train)
        results[gamma] = evaluate(model.classifier(), behavior_eval_samples(test), "behavior")
    return results


def test_gamma_ablation_report(benchmark, gamma_study):
    benchmark(lambda: sorted(gamma_study.items(), reverse=True))
    rows = [
        [gamma, r.accuracy, r.f1, r.ks]
        for gamma, r in sorted(gamma_study.items(), reverse=True)
    ]
    save_result(
        "ablation_gamma",
        format_table(
            ["Gamma", "Acc", "F1", "KS"],
            rows,
            title="Ablation A1: TracSeq time decay (gamma=1.0 is plain TracInCP)",
        ),
    )
    assert len(gamma_study) == len(GAMMAS)


def test_decayed_gamma_not_worse_than_tracin(benchmark, gamma_study):
    """Some gamma < 1 must match or beat plain TracInCP (acc + F1)."""
    benchmark(lambda: [r.accuracy for r in gamma_study.values()])
    tracin = gamma_study[1.0].accuracy + gamma_study[1.0].f1
    best_decayed = max(gamma_study[g].accuracy + gamma_study[g].f1 for g in GAMMAS if g < 1.0)
    assert best_decayed >= tracin - 0.05, (
        f"best decayed acc+f1 {best_decayed:.3f} vs TracInCP {tracin:.3f}"
    )


def test_all_gammas_produce_usable_models(benchmark, gamma_study):
    benchmark(lambda: [r.miss for r in gamma_study.values()])
    for gamma, result in gamma_study.items():
        assert result.miss <= 0.2, f"gamma={gamma}: miss={result.miss}"
