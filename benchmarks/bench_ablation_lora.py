"""Ablation A3: LoRA rank (paper uses r=8, alpha=16 on q/k/v).

Setup mirrors real LoRA usage: a base model is first trained (full
parameters) on early behavior periods, then *frozen* and adapted with
rank-r LoRA (adapters only, embeddings frozen) to the later periods.
The sweep measures adaptation quality and trainable-parameter cost.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import ZiGong
from repro.data import build_behavior_examples
from repro.datasets import make_behavior
from repro.eval import evaluate, format_table
from repro.lora import LoRAConfig, trainable_parameter_fraction

from conftest import SEED, behavior_eval_samples, fast_zigong_config, save_result

RANKS = (2, 4, 8, 16)


@pytest.fixture(scope="module")
def lora_study():
    dataset = make_behavior(n_users=90, n_periods=5, seed=SEED)
    examples = build_behavior_examples(dataset)
    early = [e for e in examples if e.timestamp <= 2]
    late = [e for e in examples if e.timestamp >= 3]
    rng = np.random.default_rng(SEED)
    order = rng.permutation(len(late))
    adapt = [late[i] for i in order[: int(0.7 * len(late))]]
    test = [late[i] for i in order[int(0.7 * len(late)) :]]

    # Pretrain the base on early periods with full parameters.
    base_config = fast_zigong_config(epochs=4)
    results = {}
    fractions = {}
    for rank in RANKS:
        config = dataclasses.replace(
            base_config,
            lora=LoRAConfig(
                rank=rank, alpha=2 * rank, target_modules=("wq", "wk", "wv"),
                train_embeddings=False,
            ),
        )
        zigong = ZiGong.from_examples(examples, config=config)
        zigong.finetune(early, use_lora=False)  # full-parameter pretraining
        zigong.apply_lora()  # freeze base, inject rank-r adapters
        zigong.finetune(adapt)  # adapter-only adaptation to recent data
        fractions[rank] = trainable_parameter_fraction(zigong.model)
        results[rank] = evaluate(zigong.classifier(), behavior_eval_samples(test), "behavior")
    return results, fractions


def test_lora_rank_report(benchmark, lora_study):
    benchmark(lambda: lora_study[1])
    results, fractions = lora_study
    rows = [
        [rank, results[rank].accuracy, results[rank].f1, results[rank].ks, fractions[rank]]
        for rank in RANKS
    ]
    save_result(
        "ablation_lora",
        format_table(
            ["Rank", "Acc", "F1", "KS", "Trainable frac"],
            rows,
            title="Ablation A3: LoRA rank (paper default r=8)",
        ),
    )
    assert len(results) == len(RANKS)


def test_trainable_fraction_grows_with_rank(benchmark, lora_study):
    benchmark(lambda: lora_study[1])
    _, fractions = lora_study
    values = [fractions[rank] for rank in RANKS]
    assert all(a < b for a, b in zip(values, values[1:]))
    assert values[-1] < 0.5  # still parameter-efficient at rank 16


def test_adaptation_produces_valid_models(benchmark, lora_study):
    benchmark(lambda: lora_study[0])
    results, _ = lora_study
    for rank, result in results.items():
        assert result.miss <= 0.3, f"rank={rank}: miss={result.miss}"
        assert result.accuracy >= 0.4, f"rank={rank}: acc={result.accuracy}"
