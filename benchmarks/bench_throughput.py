"""P1: substrate throughput — forward, backward, generation, influence.

Not a paper table; documents the cost envelope of the numpy substrate so
users can budget experiments (see DESIGN.md section 5).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import bench_config
from repro.nn import GenerationConfig, MistralTiny, generate
from repro.optim import AdamW
from repro.influence import per_sample_gradient

BATCH, SEQ = 8, 64


@pytest.fixture(scope="module")
def model():
    return MistralTiny(bench_config().model, rng=0)


@pytest.fixture(scope="module")
def token_ids(model):
    rng = np.random.default_rng(0)
    return rng.integers(5, model.config.vocab_size, size=(BATCH, SEQ))


def test_forward_throughput(benchmark, model, token_ids):
    from repro.tensor import no_grad

    def run():
        with no_grad():
            return model(token_ids)

    benchmark(run)
    benchmark.extra_info["tokens_per_call"] = BATCH * SEQ


def test_forward_backward_throughput(benchmark, model, token_ids):
    def run():
        model.zero_grad()
        model.loss(token_ids).backward()

    benchmark(run)
    benchmark.extra_info["tokens_per_call"] = BATCH * SEQ


def test_optimizer_step_cost(benchmark, model, token_ids):
    optimizer = AdamW(model.parameters(), lr=1e-3)
    model.zero_grad()
    model.loss(token_ids).backward()
    benchmark(optimizer.step)


def test_generation_latency(benchmark, model):
    prompt = np.arange(1, 17)
    config = GenerationConfig(max_new_tokens=8)
    benchmark(lambda: generate(model, prompt, config))
    benchmark.extra_info["new_tokens_per_call"] = 8


def test_per_sample_gradient_cost(benchmark, model):
    example = (list(range(1, 33)), list(range(1, 33)))
    benchmark(lambda: per_sample_gradient(model, example))


def test_generation_latency_uncached(benchmark, model):
    """Baseline for the KV-cache speedup: full re-forward per token."""
    prompt = np.arange(1, 17)
    config = GenerationConfig(max_new_tokens=8, use_cache=False)
    benchmark(lambda: generate(model, prompt, config))
    benchmark.extra_info["new_tokens_per_call"] = 8


def test_kv_cache_append_cost(benchmark, model):
    """Cost of the rolling-buffer append alone."""
    cache = model.make_cache()
    rng = np.random.default_rng(0)
    head_dim = model.config.d_model // model.config.n_heads
    k = rng.normal(size=(1, model.config.n_kv_heads, 1, head_dim)).astype(np.float32)

    def run():
        cache.layers[0].append(k, k)

    benchmark(run)
