"""Ablation A5: generative classification vs a discriminative head.

Table 3 lists ZiGong's task type as "Text Generation & Classification".
This ablation pits the two read-outs against each other on the same
backbone budget and training data: generate-and-parse (can Miss; speaks
the task's language) versus a pooled classification head (never misses;
no text interface).
"""

from __future__ import annotations

import pytest

from repro.baselines import HeadClassifierModel
from repro.data import corpus_texts
from repro.datasets import make_german
from repro.data import build_classification_examples
from repro.eval import evaluate, format_table, make_eval_samples
from repro.nn import ModelConfig
from repro.tokenizer import WordTokenizer

from conftest import SEED, fast_zigong_config, save_result, train_plain


@pytest.fixture(scope="module")
def head_study():
    dataset = make_german(n=300, seed=SEED)
    train, test = dataset.split(test_fraction=0.2, seed=SEED)
    train_ex = build_classification_examples(train)
    samples = make_eval_samples(test)

    generative = train_plain(train_ex)
    gen_result = evaluate(generative.classifier("generative"), samples, "german")

    tokenizer = WordTokenizer.train(corpus_texts(train_ex))
    head_config = ModelConfig(
        vocab_size=tokenizer.vocab_size, d_model=32, n_layers=2, n_heads=4,
        n_kv_heads=2, d_ff=64, max_seq_len=64,
    )
    head = HeadClassifierModel.fit(
        train_ex, tokenizer, head_config, epochs=8, lr=3e-3, seed=SEED, name="head"
    )
    head_result = evaluate(head, samples, "german")
    return gen_result, head_result


def test_head_ablation_report(benchmark, head_study):
    gen_result, head_result = head_study
    benchmark(lambda: (gen_result.as_row(), head_result.as_row()))
    rows = [
        ["generate-and-parse", gen_result.accuracy, gen_result.f1, gen_result.miss,
         gen_result.ks],
        ["classification head", head_result.accuracy, head_result.f1, head_result.miss,
         head_result.ks],
    ]
    save_result(
        "ablation_head",
        format_table(
            ["Read-out", "Acc", "F1", "Miss", "KS"],
            rows,
            title="Ablation A5: generative vs discriminative read-out (german)",
        ),
    )


def test_head_never_misses(benchmark, head_study):
    _, head_result = head_study
    benchmark(lambda: head_result.miss)
    assert head_result.miss == 0.0


def test_both_readouts_beat_chance(benchmark, head_study):
    gen_result, head_result = head_study
    benchmark(lambda: (gen_result.accuracy, head_result.accuracy))
    for result in head_study:
        assert result.auc is None or result.auc > 0.55
