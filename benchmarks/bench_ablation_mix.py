"""Ablation A2: the hybrid-mix ratio (paper: 70% random + 30% pruned).

Holding the training budget at half the pool, sweep the share of
high-influence samples in the mix from 0 (pure random) to 1 (pure
Top-K) and measure downstream performance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DataPruner, PrunerConfig, ZiGong
from repro.data import hybrid_mix
from repro.eval import evaluate, format_table
from repro.training import CheckpointManager

from conftest import SEED, behavior_eval_samples, behavior_study_split, fast_zigong_config, save_result

FRACTIONS = (0.0, 0.3, 0.7, 1.0)


@pytest.fixture(scope="module")
def mix_study(tmp_path_factory):
    pool, val, test = behavior_study_split(n_users=120, n_periods=5, seed=SEED)

    warm = ZiGong.from_examples(pool + val, config=fast_zigong_config(epochs=2))
    ckpt_dir = tmp_path_factory.mktemp("mix-ckpts")
    warm.finetune(pool, checkpoint_dir=ckpt_dir)
    checkpoints = CheckpointManager(ckpt_dir).checkpoints()
    scores = DataPruner(
        PrunerConfig(strategy="tracseq", gamma=0.8, projection_dim=128)
    ).score(warm, pool, val, checkpoints)

    budget = len(pool) // 2
    results = {}
    for fraction in FRACTIONS:
        pool_labels = [e.label for e in pool]
        mixed = hybrid_mix(pool, scores, total=budget, pruned_fraction=fraction, seed=SEED,
                           labels=pool_labels)
        model = ZiGong.from_examples(pool + val, config=fast_zigong_config(epochs=8))
        model.finetune(mixed)
        results[fraction] = evaluate(model.classifier(), behavior_eval_samples(test), "behavior")
    return results


def test_mix_ablation_report(benchmark, mix_study):
    benchmark(lambda: sorted(mix_study.items()))
    rows = [[f, r.accuracy, r.f1, r.ks] for f, r in sorted(mix_study.items())]
    save_result(
        "ablation_mix",
        format_table(
            ["Pruned share", "Acc", "F1", "KS"],
            rows,
            title="Ablation A2: hybrid mix ratio at a fixed 50% budget "
            "(paper uses 0.3)",
        ),
    )
    assert len(mix_study) == len(FRACTIONS)


def test_pruned_mix_not_worse_than_pure_random(benchmark, mix_study):
    """Adding Top-K samples to the mix must not hurt (paper: it helps)."""
    benchmark(lambda: [r.accuracy for r in mix_study.values()])
    paper_mix = mix_study[0.3].accuracy + mix_study[0.3].f1
    pure_random = mix_study[0.0].accuracy + mix_study[0.0].f1
    assert paper_mix >= pure_random - 0.08, (
        f"mix(0.3) acc+f1={paper_mix:.3f} vs random={pure_random:.3f}"
    )


def test_all_mixes_answer_in_format(benchmark, mix_study):
    benchmark(lambda: [r.miss for r in mix_study.values()])
    for fraction, result in mix_study.items():
        assert result.miss <= 0.2, f"fraction={fraction}: miss={result.miss}"
