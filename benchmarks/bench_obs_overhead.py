"""P3: observability overhead — instrumented vs uninstrumented serving.

An observability layer only earns its place on the hot path if it is
effectively free.  This benchmark drives the same micro-batched traffic
as ``bench_serving.py`` through two Behavior Card services — one with a
fully wired :class:`~repro.obs.Observability` hub (metrics + spans +
JSON-lines events), one with ``Observability.disabled()`` — and asserts
the throughput cost of instrumentation stays under the ~3 % budget
(ISSUE-2 acceptance).  Alternating best-of-``REPEATS`` timing keeps the
comparison robust to scheduler noise.

It also records a run file (events + a final metrics snapshot) and
renders it through the same path as ``repro obs report``, so the
recorded-run tooling is exercised on real serving traffic.
"""

from __future__ import annotations

import time

import pytest

from repro.obs import Observability, read_events, render_report
from repro.serving import BehaviorCardConfig, BehaviorCardService, ScoreRequest

from conftest import save_result, synthetic_traffic, train_plain

N_REQUESTS = 64
REPEATS = 3
MAX_OVERHEAD = 0.03


@pytest.fixture(scope="module")
def classifier():
    """A quickly fine-tuned operational model (scores are irrelevant here)."""
    from repro.data import build_behavior_examples
    from repro.datasets import make_behavior

    examples = build_behavior_examples(make_behavior(n_users=24, n_periods=2, seed=0))
    return train_plain(examples, epochs=2).classifier()


@pytest.fixture(scope="module")
def traffic():
    return [
        ScoreRequest(user_id, text)
        for user_id, text in synthetic_traffic(N_REQUESTS)
    ]


def _make_service(classifier, traffic, obs):
    return BehaviorCardService(
        classifier,
        BehaviorCardConfig(cache_size=4096, max_batch_size=8,
                           queue_capacity=max(64, len(traffic))),
        obs=obs,
    )


def _time_run(classifier, traffic, obs) -> float:
    service = _make_service(classifier, traffic, obs)
    start = time.perf_counter()
    service.score_requests(traffic)
    return time.perf_counter() - start


def test_obs_overhead(classifier, traffic, tmp_path):
    # Warm both paths once (numpy buffers, code paths) before timing.
    _time_run(classifier, traffic, Observability.disabled())
    _time_run(classifier, traffic, Observability.create())

    disabled_times, enabled_times = [], []
    for _ in range(REPEATS):
        disabled_times.append(_time_run(classifier, traffic, Observability.disabled()))
        enabled_times.append(_time_run(classifier, traffic, Observability.create()))

    best_disabled = min(disabled_times)
    best_enabled = min(enabled_times)
    overhead = best_enabled / best_disabled - 1.0

    # A recorded run: instrumented traffic with an event sink attached,
    # snapshotted at the end — exactly what `repro obs report` consumes.
    run_path = tmp_path / "obs_run.jsonl"
    recording = Observability.create(events_path=run_path)
    service = _make_service(classifier, traffic, recording)
    service.score_requests(traffic)
    recording.events.emit_metrics(recording.metrics)
    recording.events.close()
    report = render_report(read_events(run_path))
    assert "serving.latency_s" in report
    assert "serving.batch" in report

    lines = [
        f"observability overhead on {len(traffic)} micro-batched requests "
        f"(best of {REPEATS})",
        "",
        f"  disabled  {best_disabled * 1000:8.1f} ms  "
        f"({len(traffic) / best_disabled:7.1f} req/s)",
        f"  enabled   {best_enabled * 1000:8.1f} ms  "
        f"({len(traffic) / best_enabled:7.1f} req/s)",
        f"  overhead  {overhead * 100:+7.2f} %  (budget {MAX_OVERHEAD * 100:.0f} %)",
        "",
        "recorded-run report (metrics + spans from the instrumented run):",
        "",
        report,
    ]
    save_result("obs_overhead", "\n".join(lines))

    assert overhead < MAX_OVERHEAD, (
        f"instrumentation costs {overhead * 100:.2f} % throughput "
        f"(budget {MAX_OVERHEAD * 100:.0f} %)"
    )
