"""P5: resilience overhead — retry + breaker + fault points on the happy path.

The resilience layer only earns its place if a healthy service cannot
tell it is there.  This benchmark pins the happy-path cost of the full
stack — an armed :class:`~repro.resilience.RetryPolicy`, a
:class:`~repro.resilience.CircuitBreaker` and the uninstalled
``serving.forward`` fault point — under the 2 % budget (ISSUE-5
acceptance).

The budget is asserted compositionally: the exact per-batch sequence
the resilient engine adds (fault point, ``allow()``, the retry
wrapper, ``record_success()``, the deadline scan) is timed in a tight
loop, amortized to nanosecond stability, and divided by the measured
per-batch cost of a bare engine serving real micro-batched traffic.
A naive wall-clock A/B of two full serving runs is also printed for
reference, but not asserted: at a 2 % budget it flips sign run-to-run
under scheduler and allocator noise, while the compositional ratio is
deterministic to well under a tenth of the budget.

The scorer is synthetic (a fixed numpy matmul sized like a tiny
batched forward pass) so every timed run does identical work — a live
``LMClassifier`` carries prompt/KV caches whose eviction regimes shift
between runs.

The benchmark then runs a short outage scenario (injected transient
faults, then a hard failure streak that trips the breaker) and renders
the registry so the ``resilience.retry.*`` / ``resilience.breaker.*``
counters appear in the recorded output alongside the serving metrics.
"""

from __future__ import annotations

import gc
import time

import numpy as np

from repro.obs import Observability, render_registry
from repro.resilience import CircuitBreaker, FaultInjector, RetryPolicy
from repro.resilience.faults import fault_point
from repro.serving import EngineConfig, MicroBatchEngine, ScoreRequest, ScoreResult

from conftest import save_result, synthetic_traffic

N_REQUESTS = 64
PASSES = 6  # serve the traffic this many times per timed run
REPEATS = 5
WRAPPER_ITERS = 20000
MAX_OVERHEAD = 0.02

# Fixed operands for the synthetic forward pass: deterministic content,
# sized so one "batch forward" costs on the order of a tiny model's.
_X = np.linspace(-1.0, 1.0, 8 * 512, dtype=np.float32).reshape(8, 512)
_W = np.linspace(-0.5, 0.5, 512 * 512, dtype=np.float32).reshape(512, 512)


def synthetic_batch_fn(requests):
    h = np.tanh(_X[: len(requests)] @ _W) @ _W[:, :1]
    return [
        ScoreResult(r.user_id, float(abs(s) % 1.0), bool(s < 0), 0.5, cached=False)
        for r, s in zip(requests, h[:, 0])
    ]


def fallback_fn(requests):
    return [
        ScoreResult(r.user_id, 0.9, False, 0.5, cached=False) for r in requests
    ]


def make_engine(resilient: bool, obs) -> MicroBatchEngine:
    kwargs = {}
    if resilient:
        kwargs = dict(
            retry_policy=RetryPolicy(max_attempts=3, obs=obs),
            breaker=CircuitBreaker(obs=obs),
        )
    return MicroBatchEngine(
        synthetic_batch_fn,
        EngineConfig(max_batch_size=8, queue_capacity=max(64, N_REQUESTS)),
        fallback_fn=fallback_fn,
        obs=obs,
        **kwargs,
    )


def _time_serve(traffic, resilient: bool) -> float:
    engine = make_engine(resilient, Observability.disabled())
    # Collector pauses land at arbitrary points and cost more than the
    # entire budget; collect up front, then keep the GC out of the run.
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for _ in range(PASSES):
            engine.serve(traffic)
        return time.perf_counter() - start
    finally:
        gc.enable()


def _time_wrapper_per_batch(requests) -> float:
    """Amortized cost of everything the resilient path adds per batch."""
    obs = Observability.disabled()
    policy = RetryPolicy(max_attempts=3, obs=obs)
    breaker = CircuitBreaker(obs=obs)

    def happy_scorer():
        return requests  # stand-in; the real forward is timed separately

    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for _ in range(WRAPPER_ITERS):
            fault_point("serving.forward", batch_size=len(requests))
            deadlines = [  # the engine's _batch_deadline scan
                r.deadline for r in requests if r.deadline is not None
            ]
            min(deadlines) if deadlines else None
            breaker.allow()
            policy.call(happy_scorer)
            breaker.record_success()
        return (time.perf_counter() - start) / WRAPPER_ITERS
    finally:
        gc.enable()


def test_resilience_overhead():
    traffic = [
        ScoreRequest(user_id, text)
        for user_id, text in synthetic_traffic(N_REQUESTS)
    ]
    batches_per_run = -(-len(traffic) // 8) * PASSES  # ceil-div batches

    # Warm both paths once (numpy buffers, code paths) before timing.
    _time_serve(traffic, resilient=False)
    _time_serve(traffic, resilient=True)

    bare_times = [_time_serve(traffic, resilient=False) for _ in range(REPEATS)]
    resilient_times = [_time_serve(traffic, resilient=True) for _ in range(REPEATS)]
    best_bare = min(bare_times)
    best_resilient = min(resilient_times)
    bare_per_batch = best_bare / batches_per_run

    wrapper_per_batch = _time_wrapper_per_batch(traffic[:8])
    overhead = wrapper_per_batch / bare_per_batch

    # An outage scenario, for the record: two transient forward faults
    # (absorbed by retries, callers never notice), then a hard failure
    # streak that trips the breaker and routes traffic to the fallback.
    obs = Observability.create()
    engine = MicroBatchEngine(
        synthetic_batch_fn,
        EngineConfig(max_batch_size=8, queue_capacity=max(64, N_REQUESTS)),
        fallback_fn=fallback_fn,
        retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.001, obs=obs),
        breaker=CircuitBreaker(min_calls=2, window=4, obs=obs),
        obs=obs,
    )
    transient = FaultInjector(seed=0).fail_times("serving.forward", 2)
    with transient.active():
        healthy = engine.serve(traffic[:16])
    hard_down = FaultInjector(seed=0).fail_rate("serving.forward", 1.0)
    with hard_down.active():
        degraded = engine.serve(traffic[16:48])
    assert all(not r.degraded for r in healthy)
    assert all(r.degraded for r in degraded)
    assert engine.breaker.state == "open"
    report = render_registry(obs.metrics)
    assert "resilience.retry.attempts" in report
    assert "resilience.breaker.open" in report

    served = len(traffic) * PASSES
    lines = [
        f"resilience happy-path overhead ({served} micro-batched requests "
        f"per run, best of {REPEATS})",
        "",
        f"  bare serve          {best_bare * 1000:8.1f} ms  "
        f"({served / best_bare:7.1f} req/s; {bare_per_batch * 1e6:6.1f} us/batch)",
        f"  resilient serve     {best_resilient * 1000:8.1f} ms  "
        f"({served / best_resilient:7.1f} req/s)  [informational]",
        f"  wrapper cost        {wrapper_per_batch * 1e6:8.2f} us/batch  "
        f"(retry + breaker + fault point + deadline scan, x{WRAPPER_ITERS})",
        f"  overhead            {overhead * 100:+7.2f} %  "
        f"(budget {MAX_OVERHEAD * 100:.0f} %)",
        "",
        "outage-scenario registry (transient faults retried, breaker tripped):",
        "",
        report,
    ]
    save_result("resilience", "\n".join(lines))

    assert overhead < MAX_OVERHEAD, (
        f"resilience wrappers cost {overhead * 100:.2f} % of the per-batch "
        f"happy path (budget {MAX_OVERHEAD * 100:.0f} %)"
    )
