"""Online-learning loop smoke benchmark: drift -> retrain -> shadow -> promote.

Times each phase of one full continuous-learning round at benchmark
scale and records the loop's bookkeeping (PSI at the trip, retrain set
size after influence filtering, shadow window, gate verdict).  A second
arm injects a post-deploy verification fault and times the automatic
rollback, pinning that the recovery path restores the exact prior
weights without manual intervention.

Writes ``benchmarks/results/online.{txt,json}``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import ZiGong
from repro.data import build_behavior_examples
from repro.datasets import make_behavior
from repro.obs import (
    EventSink,
    MetricsRegistry,
    Observability,
    Tracer,
    render_registry,
)
from repro.pipeline import (
    MONITOR,
    SHADOW,
    OnlineConfig,
    OnlinePipeline,
    PromotionGate,
)
from repro.resilience import FaultInjector
from repro.serving import ClusterConfig, ScoreRequest

from conftest import fast_zigong_config, save_result

SEED = 0
N_USERS = 24
N_PERIODS = 4
BATCH = 8
MAX_TICKS = 60


def _loop_config() -> OnlineConfig:
    return OnlineConfig(
        drift_window=48,
        min_observations=16,
        n_bins=8,
        retrain_window=64,
        min_retrain_examples=8,
        keep_fraction=0.6,
        retrain_epochs=1,
        shadow_requests=10,
        shadow_window=32,
        gate=PromotionGate(
            min_shadow_requests=8,
            min_agreement=0.0,
            max_accuracy_drop=None,
            max_miss_increase=None,
        ),
        seed=SEED,
    )


def _build_scenario():
    dataset = make_behavior(n_users=N_USERS, n_periods=N_PERIODS, seed=3)
    examples = build_behavior_examples(dataset)
    zigong = ZiGong.from_examples(examples, config=fast_zigong_config(epochs=2, seed=SEED))
    zigong.apply_lora()
    zigong.finetune(examples[: len(examples) // 2])
    traffic = [
        ScoreRequest(f"user-{user:04d}-p{period}", dataset.row_text(user, period))
        for user in range(dataset.n_users)
        for period in range(dataset.n_periods)
    ]
    return zigong, examples, traffic


def _clone(zigong: ZiGong) -> ZiGong:
    copy = ZiGong(zigong.config, zigong.tokenizer)
    copy.apply_lora()
    copy.model.load_state_dict(
        {k: np.asarray(v).copy() for k, v in zigong.model.state_dict().items()}
    )
    return copy


def _recording_obs() -> Observability:
    """An enabled hub with an in-memory event ring (span records kept)."""
    metrics = MetricsRegistry()
    events = EventSink()
    return Observability(
        metrics=metrics, tracer=Tracer(metrics=metrics, events=events), events=events
    )


def _make_pipeline(zigong, work_dir, obs):
    # A reference anchored away from the live score mass trips PSI
    # deterministically once the drift window fills.
    return OnlinePipeline.for_zigong(
        _clone(zigong),
        reference_scores=np.linspace(0.9, 1.0, 32),
        work_dir=work_dir,
        config=_loop_config(),
        cluster_config=ClusterConfig(replicas=2),
        obs=obs,
    )


def _drive_timed(pipeline, traffic):
    """Run the loop to promotion, timing each phase by its transitions."""
    phase_started = {pipeline.phase: time.perf_counter()}
    durations: dict[str, float] = {}
    cursor = 0
    ticks = 0
    for ticks in range(1, MAX_TICKS + 1):
        before = pipeline.phase
        pipeline.tick(
            [traffic[(cursor + j) % len(traffic)] for j in range(BATCH)]
        )
        cursor += BATCH
        now = time.perf_counter()
        if pipeline.phase != before:
            durations[before] = durations.get(before, 0.0) + (
                now - phase_started.pop(before)
            )
            phase_started[pipeline.phase] = now
        if pipeline.state.promotions or pipeline.state.rollbacks:
            break
    return durations, ticks


def test_online_pipeline_smoke(tmp_path):
    zigong, examples, traffic = _build_scenario()

    # Arm 1: the happy path — drift detected, candidate retrained on the
    # influence-filtered buffer, shadow-scored, gated, promoted.
    obs = _recording_obs()
    pipeline = _make_pipeline(zigong, tmp_path / "happy", obs=obs)
    pipeline.ingest(examples[48:])
    start = time.perf_counter()
    durations, ticks = _drive_timed(pipeline, traffic)
    total = time.perf_counter() - start

    state = pipeline.state
    assert state.promotions == 1
    assert state.rollbacks == 0
    assert pipeline.phase == MONITOR
    gate = pipeline.last_gate
    assert gate is not None and gate.passed

    # Arm 2: forced verification failure — the promotion must roll back
    # to the exact prior weights, automatically.
    rb_pipeline = _make_pipeline(zigong, tmp_path / "rollback", obs=_recording_obs())
    rb_pipeline.ingest(examples[48:])
    prior = {
        k: np.asarray(v).copy()
        for k, v in rb_pipeline.zigong.model.state_dict().items()
    }
    injector = FaultInjector().fail_nth("pipeline.promote.verify", 1)
    rb_start = time.perf_counter()
    with injector.active():
        _drive_timed(rb_pipeline, traffic)
    rb_total = time.perf_counter() - rb_start
    assert rb_pipeline.state.rollbacks == 1
    assert rb_pipeline.state.promotions == 0
    after = rb_pipeline.zigong.model.state_dict()
    assert all(np.array_equal(prior[k], np.asarray(after[k])) for k in prior)

    n_selected = len(
        list(
            (tmp_path / "happy" / "round-001" / "selected.jsonl")
            .read_text()
            .splitlines()
        )
    )
    # Drift-check and retrain complete within a single tick, so phase
    # boundaries cannot see the retrain cost — use the recorded span.
    retrain_s = sum(
        float(e.get("duration_s", 0.0))
        for e in obs.events.events()
        if e.get("kind") == "span" and e.get("name") == "pipeline.retrain"
    )
    metrics = {
        "ticks_to_promotion": ticks,
        "drift_to_promoted_s": total,
        "monitor_s": durations.get(MONITOR, 0.0),
        "retrain_s": retrain_s,
        "shadow_s": durations.get(SHADOW, 0.0),
        "psi_at_trip": state.drift_psi,
        "retrain_examples_selected": n_selected,
        "shadow_requests_scored": pipeline.config.shadow_requests,
        "gate_agreement": gate.metrics.get("agreement_rate"),
        "rollback_round_s": rb_total,
    }
    lines = [
        "online learning loop: one continuous-learning round "
        f"({BATCH} requests/tick, 2 replicas)",
        "",
        f"  drift -> promoted   {total * 1000:8.1f} ms  ({ticks} ticks)",
        f"    monitor (to PSI trip, incl. retrain tick)  "
        f"{durations.get(MONITOR, 0.0) * 1000:8.1f} ms  (PSI {state.drift_psi:.2f})",
        f"    retrain span (influence-filtered, {n_selected} examples)"
        f"  {retrain_s * 1000:8.1f} ms",
        f"    shadow + gate + deploy  "
        f"{(durations.get(SHADOW, 0.0)) * 1000:8.1f} ms  "
        f"(agreement {gate.metrics.get('agreement_rate', float('nan')):.2f})",
        f"  forced-rollback round   {rb_total * 1000:8.1f} ms  "
        "(exact prior weights restored)",
        "",
        "loop registry:",
        "",
        render_registry(obs.metrics),
    ]
    save_result(
        "online",
        "\n".join(lines),
        metrics=metrics,
        config={
            "n_users": N_USERS,
            "n_periods": N_PERIODS,
            "batch": BATCH,
            "replicas": 2,
            "seed": SEED,
        },
    )
